// Package experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index):
//
//   - Fig. 8  — program fidelity per topology × benchmark × strategy
//   - Fig. 9  — mean fidelity, P_h, and crossings per topology × strategy
//   - Table II — legalization runtimes t_q / t_e
//   - Table III — qGDP-LG vs qGDP-DP layout quality
//
// Each experiment returns structured results plus a Render method
// producing the same rows/series the paper reports. The cmd/qgdp-bench
// tool and the root bench_test.go both drive this package.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/qbench"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/topology"
)

// Benchmarks are the Fig. 8 benchmark columns.
func Benchmarks() []string {
	names := make([]string, 0, 7)
	for _, b := range qbench.Suite() {
		names = append(names, b.Name)
	}
	return names
}

// Runner drives the experiments through a shared service engine: every
// topology × strategy (× benchmark) job fans out concurrently, the
// engine's caches share GP solutions and layouts across experiments,
// and singleflight collapses duplicate jobs. Results are byte-identical
// to the old serial drivers — every stage is deterministic in its
// inputs, concurrency only reorders completion.
type Runner struct {
	eng *service.Engine
}

// NewRunner wraps an engine. cmd/qgdp-bench builds one engine and runs
// all requested experiments through it, so Fig. 8, Fig. 9, and
// Table II reuse each other's layouts.
func NewRunner(eng *service.Engine) *Runner { return &Runner{eng: eng} }

// defaultRunner backs the package-level experiment functions.
var defaultRunner = sync.OnceValue(func() *Runner {
	return NewRunner(service.New(service.Options{}))
})

// fanOut runs n jobs concurrently and returns the first error. The
// shared context is cancelled as soon as any job fails, so in-flight
// pipeline work aborts at the engine's next cancellation checkpoint
// instead of running every remaining job to completion. Jobs write
// results into distinct slots, so no result locking is needed.
func fanOut(n int, job func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := job(ctx, i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// prepare legalizes every device under the given strategies, fanning
// the topology × strategy jobs out through the engine. GP still runs
// once per device: the engine's GP cache and singleflight guarantee all
// strategies legalize clones of one solution, as the paper's
// methodology prescribes.
func (r *Runner) prepare(devs []*topology.Device, cfg core.Config, strategies []core.Strategy) (map[string]map[core.Strategy]*core.Layout, error) {
	type job struct {
		dev *topology.Device
		s   core.Strategy
	}
	var jobs []job
	for _, dev := range devs {
		for _, s := range strategies {
			jobs = append(jobs, job{dev, s})
		}
	}
	lays := make([]*core.Layout, len(jobs))
	err := fanOut(len(jobs), func(ctx context.Context, i int) error {
		j := jobs[i]
		res, err := r.eng.Layout(ctx, service.LayoutRequest{
			Topology: j.dev.Name, Device: j.dev, Strategy: j.s, Config: cfg,
		})
		if err != nil {
			return fmt.Errorf("%s/%s: %w", j.dev.Name, j.s, err)
		}
		lays[i] = res.Layout
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := map[string]map[core.Strategy]*core.Layout{}
	for _, dev := range devs {
		out[dev.Name] = map[core.Strategy]*core.Layout{}
	}
	for i, j := range jobs {
		out[j.dev.Name][j.s] = lays[i]
	}
	return out, nil
}

// fidelityGrid evaluates every (topology, strategy, benchmark) tuple
// concurrently through the engine. Layouts are computed (or joined)
// on demand by the engine's nested singleflight, so fidelity jobs for
// fast topologies need not wait for slow topologies' layouts; values
// are cached for reuse across experiments.
func (r *Runner) fidelityGrid(devs []*topology.Device, strategies []core.Strategy, benches []string, cfg core.Config) (map[string]map[core.Strategy]map[string]float64, error) {
	type job struct {
		dev   *topology.Device
		s     core.Strategy
		bench string
	}
	var jobs []job
	for _, dev := range devs {
		for _, s := range strategies {
			for _, b := range benches {
				jobs = append(jobs, job{dev, s, b})
			}
		}
	}
	vals := make([]float64, len(jobs))
	err := fanOut(len(jobs), func(ctx context.Context, i int) error {
		j := jobs[i]
		res, err := r.eng.Fidelity(ctx, service.FidelityRequest{
			LayoutRequest: service.LayoutRequest{
				Topology: j.dev.Name, Device: j.dev, Strategy: j.s, Config: cfg,
			},
			Benchmark: j.bench,
		})
		if err != nil {
			return fmt.Errorf("%s/%s/%s: %w", j.dev.Name, j.s, j.bench, err)
		}
		vals[i] = res.Fidelity
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := map[string]map[core.Strategy]map[string]float64{}
	for _, dev := range devs {
		out[dev.Name] = map[core.Strategy]map[string]float64{}
		for _, s := range strategies {
			out[dev.Name][s] = map[string]float64{}
		}
	}
	for i, j := range jobs {
		out[j.dev.Name][j.s][j.bench] = vals[i]
	}
	return out, nil
}

// Fig8Result holds the fidelity grid of Fig. 8.
type Fig8Result struct {
	Topologies []string
	Strategies []core.Strategy
	Benchmarks []string
	// Fidelity[topology][strategy][benchmark].
	Fidelity map[string]map[core.Strategy]map[string]float64
}

// Fig8 regenerates the Fig. 8 fidelity grid through the default engine.
func Fig8(devs []*topology.Device, cfg core.Config) (*Fig8Result, error) {
	return defaultRunner().Fig8(devs, cfg)
}

// Fig8 regenerates the Fig. 8 fidelity grid, fanning every
// topology × strategy × benchmark job out through the engine. No
// prepare barrier: each fidelity job computes or joins its layout via
// the engine, so fast topologies finish without waiting for slow ones.
func (r *Runner) Fig8(devs []*topology.Device, cfg core.Config) (*Fig8Result, error) {
	res := &Fig8Result{
		Strategies: core.Strategies(),
		Benchmarks: Benchmarks(),
	}
	for _, dev := range devs {
		res.Topologies = append(res.Topologies, dev.Name)
	}
	grid, err := r.fidelityGrid(devs, res.Strategies, res.Benchmarks, cfg)
	if err != nil {
		return nil, err
	}
	res.Fidelity = grid
	return res, nil
}

// MeanFidelity returns the benchmark-mean fidelity for one topology and
// strategy (the "Mean" bar of Fig. 8).
func (r *Fig8Result) MeanFidelity(topo string, s core.Strategy) float64 {
	var sum float64
	for _, b := range r.Benchmarks {
		sum += r.Fidelity[topo][s][b]
	}
	return sum / float64(len(r.Benchmarks))
}

// Render prints one block per topology, rows = strategies, columns =
// benchmarks plus the mean — the Fig. 8 structure.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	for _, topo := range r.Topologies {
		fmt.Fprintf(&b, "Fig. 8 — %s\n", topo)
		headers := append([]string{"strategy"}, r.Benchmarks...)
		headers = append(headers, "Mean")
		var rows [][]string
		for _, s := range r.Strategies {
			row := []string{string(s)}
			for _, bench := range r.Benchmarks {
				row = append(row, report.Fidelity(r.Fidelity[topo][s][bench]))
			}
			row = append(row, report.Fidelity(r.MeanFidelity(topo, s)))
			rows = append(rows, row)
		}
		b.WriteString(report.Table(headers, rows))
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig9Result holds the per-topology layout metrics of Fig. 9.
type Fig9Result struct {
	Topologies []string
	Strategies []core.Strategy
	// MeanFidelity[topology][strategy], Ph (percent), Crossings.
	MeanFidelity map[string]map[core.Strategy]float64
	Ph           map[string]map[core.Strategy]float64
	Crossings    map[string]map[core.Strategy]int
}

// Fig9 regenerates Fig. 9 through the default engine.
func Fig9(devs []*topology.Device, cfg core.Config) (*Fig9Result, error) {
	return defaultRunner().Fig9(devs, cfg)
}

// Fig9 regenerates Fig. 9: mean program fidelity, hotspot proportion
// P_h, and resonator crossings X per topology and strategy. One GP +
// legalization pass per topology serves all three panels; when Fig. 8
// already ran on the same engine, every fidelity job is a cache hit.
func (r *Runner) Fig9(devs []*topology.Device, cfg core.Config) (*Fig9Result, error) {
	lays, err := r.prepare(devs, cfg, core.Strategies())
	if err != nil {
		return nil, err
	}
	benches := Benchmarks()
	res := &Fig9Result{
		Strategies:   core.Strategies(),
		MeanFidelity: map[string]map[core.Strategy]float64{},
		Ph:           map[string]map[core.Strategy]float64{},
		Crossings:    map[string]map[core.Strategy]int{},
	}
	grid, err := r.fidelityGrid(devs, res.Strategies, benches, cfg)
	if err != nil {
		return nil, err
	}
	for _, dev := range devs {
		res.Topologies = append(res.Topologies, dev.Name)
		res.MeanFidelity[dev.Name] = map[core.Strategy]float64{}
		res.Ph[dev.Name] = map[core.Strategy]float64{}
		res.Crossings[dev.Name] = map[core.Strategy]int{}
		for _, s := range res.Strategies {
			rep := core.Analyze(lays[dev.Name][s].Netlist, cfg)
			var sum float64
			for _, b := range benches {
				sum += grid[dev.Name][s][b]
			}
			res.MeanFidelity[dev.Name][s] = sum / float64(len(benches))
			res.Ph[dev.Name][s] = rep.Ph
			res.Crossings[dev.Name][s] = rep.Crossings
		}
	}
	return res, nil
}

// Mean returns the cross-topology means (the "Mean" group of Fig. 9).
func (r *Fig9Result) Mean(s core.Strategy) (fid, ph, crossings float64) {
	n := float64(len(r.Topologies))
	for _, topo := range r.Topologies {
		fid += r.MeanFidelity[topo][s]
		ph += r.Ph[topo][s]
		crossings += float64(r.Crossings[topo][s])
	}
	return fid / n, ph / n, crossings / n
}

// Render prints the three Fig. 9 panels.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	headers := append([]string{"strategy"}, r.Topologies...)
	headers = append(headers, "Mean")

	panel := func(title string, cell func(topo string, s core.Strategy) string, mean func(s core.Strategy) string) {
		fmt.Fprintf(&b, "Fig. 9 — %s\n", title)
		var rows [][]string
		for _, s := range r.Strategies {
			row := []string{string(s)}
			for _, topo := range r.Topologies {
				row = append(row, cell(topo, s))
			}
			row = append(row, mean(s))
			rows = append(rows, row)
		}
		b.WriteString(report.Table(headers, rows))
		b.WriteByte('\n')
	}

	panel("mean program fidelity",
		func(topo string, s core.Strategy) string { return report.Fidelity(r.MeanFidelity[topo][s]) },
		func(s core.Strategy) string { f, _, _ := r.Mean(s); return report.Fidelity(f) })
	panel("frequency hotspot proportion Ph (%)",
		func(topo string, s core.Strategy) string { return fmt.Sprintf("%.2f", r.Ph[topo][s]) },
		func(s core.Strategy) string { _, p, _ := r.Mean(s); return fmt.Sprintf("%.2f", p) })
	panel("resonator crossings X",
		func(topo string, s core.Strategy) string { return fmt.Sprintf("%d", r.Crossings[topo][s]) },
		func(s core.Strategy) string { _, _, x := r.Mean(s); return fmt.Sprintf("%.1f", x) })
	return b.String()
}

// Table2Result holds the legalization runtimes of Table II.
type Table2Result struct {
	Topologies []string
	Strategies []core.Strategy
	// Tq and Te in seconds, [topology][strategy].
	Tq, Te map[string]map[core.Strategy]float64
}

// Table2 regenerates Table II through the default engine.
func Table2(devs []*topology.Device, cfg core.Config) (*Table2Result, error) {
	return defaultRunner().Table2(devs, cfg)
}

// Table2 regenerates Table II: qubit (t_q) and resonator (t_e)
// legalization times. Timings are captured when a layout is first
// computed, so cached layouts report the runtimes of their original
// computation — and since jobs run concurrently, wall-clock timings
// include scheduler contention. For contention-free timings matching
// the paper's serial setup, run with a single-worker engine
// (qgdp-bench -workers 1).
func (r *Runner) Table2(devs []*topology.Device, cfg core.Config) (*Table2Result, error) {
	lays, err := r.prepare(devs, cfg, core.Strategies())
	if err != nil {
		return nil, err
	}
	res := &Table2Result{
		Strategies: core.Strategies(),
		Tq:         map[string]map[core.Strategy]float64{},
		Te:         map[string]map[core.Strategy]float64{},
	}
	for _, dev := range devs {
		res.Topologies = append(res.Topologies, dev.Name)
		res.Tq[dev.Name] = map[core.Strategy]float64{}
		res.Te[dev.Name] = map[core.Strategy]float64{}
		for _, s := range res.Strategies {
			res.Tq[dev.Name][s] = lays[dev.Name][s].QubitTime.Seconds()
			res.Te[dev.Name][s] = lays[dev.Name][s].ResonatorTime.Seconds()
		}
	}
	return res, nil
}

// Mean returns cross-topology mean runtimes in seconds.
func (r *Table2Result) Mean(s core.Strategy) (tq, te float64) {
	n := float64(len(r.Topologies))
	for _, topo := range r.Topologies {
		tq += r.Tq[topo][s]
		te += r.Te[topo][s]
	}
	return tq / n, te / n
}

// Render prints Table II (milliseconds).
func (r *Table2Result) Render() string {
	headers := []string{"Topology"}
	for _, s := range r.Strategies {
		headers = append(headers, string(s)+" tq", string(s)+" te")
	}
	var rows [][]string
	for _, topo := range r.Topologies {
		row := []string{topo}
		for _, s := range r.Strategies {
			row = append(row, report.Ms(r.Tq[topo][s]), report.Ms(r.Te[topo][s]))
		}
		rows = append(rows, row)
	}
	mean := []string{"Mean"}
	for _, s := range r.Strategies {
		tq, te := r.Mean(s)
		mean = append(mean, report.Ms(tq), report.Ms(te))
	}
	rows = append(rows, mean)
	return "Table II — legalization time (ms)\n" + report.Table(headers, rows)
}

// Table3Row is one topology's qGDP-LG vs qGDP-DP comparison.
type Table3Row struct {
	Topology string
	Cells    int
	LG, DP   StageQuality
}

// StageQuality is the Table III metric tuple for one stage.
type StageQuality struct {
	Unified   int
	Total     int
	Crossings int
	Ph        float64
	HQ        int
}

// Table3Result holds Table III.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 regenerates Table III through the default engine.
func Table3(devs []*topology.Device, cfg core.Config) (*Table3Result, error) {
	return defaultRunner().Table3(devs, cfg)
}

// Table3 regenerates Table III: detailed placement evaluation. The LG
// and DP legalizations of every topology run concurrently; the engine's
// GP cache guarantees both stages refine the same GP solution.
func (r *Runner) Table3(devs []*topology.Device, cfg core.Config) (*Table3Result, error) {
	lays, err := r.prepare(devs, cfg, []core.Strategy{core.QGDPLG, core.QGDPDP})
	if err != nil {
		return nil, err
	}
	res := &Table3Result{}
	for _, dev := range devs {
		lg, dp := lays[dev.Name][core.QGDPLG], lays[dev.Name][core.QGDPDP]
		row := Table3Row{Topology: dev.Name, Cells: lg.Netlist.NumCells()}
		row.LG = stageQuality(core.Analyze(lg.Netlist, cfg))
		row.DP = stageQuality(core.Analyze(dp.Netlist, cfg))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func stageQuality(rep metrics.Report) StageQuality {
	return StageQuality{
		Unified:   rep.Unified,
		Total:     rep.TotalResonators,
		Crossings: rep.Crossings,
		Ph:        rep.Ph,
		HQ:        rep.HQ,
	}
}

// Render prints Table III.
func (r *Table3Result) Render() string {
	headers := []string{
		"Topology", "#Cells",
		"LG Iedge", "LG X", "LG Ph(%)", "LG HQ",
		"DP Iedge", "DP X", "DP Ph(%)", "DP HQ",
	}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Topology,
			fmt.Sprintf("%d", row.Cells),
			fmt.Sprintf("%d/%d", row.LG.Unified, row.LG.Total),
			fmt.Sprintf("%d", row.LG.Crossings),
			fmt.Sprintf("%.2f", row.LG.Ph),
			fmt.Sprintf("%d", row.LG.HQ),
			fmt.Sprintf("%d/%d", row.DP.Unified, row.DP.Total),
			fmt.Sprintf("%d", row.DP.Crossings),
			fmt.Sprintf("%.2f", row.DP.Ph),
			fmt.Sprintf("%d", row.DP.HQ),
		})
	}
	return "Table III — detailed placement evaluation\n" + report.Table(headers, rows)
}
