package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the fixed latency bucket upper bounds (seconds) shared
// by every histogram in the registry. The range spans sub-millisecond
// kernel calls (maze route segments) up to the 30s end of a cold Eagle
// pipeline; fixed buckets keep Observe allocation-free and make
// cross-stage and cross-replica histograms directly addable.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30,
}

// registry is the process-wide metric set rendered by WritePrometheus.
// Registration happens at package init (kernstats) or first use (stage
// histograms); render order is sorted, so scrapes diff cleanly.
type registry struct {
	mu       sync.RWMutex
	counters []*Counter
	gauges   []*Gauge
	vecs     []*HistVec
}

var reg registry

// Counter is a monotonically increasing metric. The dotted name (e.g.
// "store.mem_hits") is kept for map-shaped views like /statsz; the
// Prometheus rendering is qgdp_<name, dots→underscores>_total.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers and returns a counter. Call once per name
// (package init); duplicate names would render duplicate series.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	reg.mu.Lock()
	reg.counters = append(reg.counters, c)
	reg.mu.Unlock()
	return c
}

// Add increments the counter.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the dotted registration name.
func (c *Counter) Name() string { return c.name }

// Gauge is a set-or-adjust metric rendered as qgdp_<name>.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge registers and returns a gauge.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	reg.mu.Lock()
	reg.gauges = append(reg.gauges, g)
	reg.mu.Unlock()
	return g
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Name returns the dotted registration name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket latency histogram. Observe is lock-free
// and allocation-free: a linear scan over ~17 bucket bounds plus three
// atomic updates, cheap enough to sit on kernel hot paths under the
// zero-alloc CI guards.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // cumulative at render, per-bucket here; len = len(bounds)+1 (last = +Inf)
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values (seconds).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistVec is a histogram family keyed by one label (stage, kernel).
// Children are created on first use and live forever — label values are
// stage names, a small closed set.
type HistVec struct {
	name   string
	label  string
	bounds []float64

	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewHistVec registers a labelled histogram family. name is the full
// Prometheus family name (e.g. "qgdp_stage_seconds").
func NewHistVec(name, label string, bounds []float64) *HistVec {
	v := &HistVec{name: name, label: label, bounds: bounds, m: map[string]*Histogram{}}
	reg.mu.Lock()
	reg.vecs = append(reg.vecs, v)
	reg.mu.Unlock()
	return v
}

// With returns the child histogram for the label value, creating it on
// first use. Callers on hot paths should cache the returned handle.
func (v *HistVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	if h, ok = v.m[value]; !ok {
		h = newHistogram(v.bounds)
		v.m[value] = h
	}
	v.mu.Unlock()
	return h
}

// stageVec is the one histogram family every Span.End feeds:
// qgdp_stage_seconds{stage="<span name>"}.
var stageVec = NewHistVec("qgdp_stage_seconds", "stage", DefBuckets)

// Stage returns the latency histogram for a pipeline stage (span name).
func Stage(name string) *Histogram { return stageVec.With(name) }

// PromName converts a dotted metric name to its Prometheus base name:
// "store.mem_hits" → "qgdp_store_mem_hits". Counters additionally get a
// _total suffix at render.
func PromName(dotted string) string {
	var b strings.Builder
	b.Grow(len("qgdp_") + len(dotted))
	b.WriteString("qgdp_")
	for _, r := range dotted {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// EscapeLabel escapes a label value for the text exposition format.
func EscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// EscapeHelp escapes HELP text for the text exposition format (only
// backslash and newline are special there).
func EscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, families and label values sorted, so successive
// scrapes of an idle process are byte-identical.
func WritePrometheus(w io.Writer) {
	reg.mu.RLock()
	counters := append([]*Counter(nil), reg.counters...)
	gauges := append([]*Gauge(nil), reg.gauges...)
	vecs := append([]*HistVec(nil), reg.vecs...)
	reg.mu.RUnlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	for _, c := range counters {
		name := PromName(c.name) + "_total"
		fmt.Fprintf(w, "# HELP %s Total %s events.\n# TYPE %s counter\n%s %d\n", name, EscapeHelp(c.name), name, name, c.Load())
	}

	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	for _, g := range gauges {
		name := PromName(g.name)
		fmt.Fprintf(w, "# HELP %s Current %s value.\n# TYPE %s gauge\n%s %d\n", name, EscapeHelp(g.name), name, name, g.Load())
	}

	sort.Slice(vecs, func(i, j int) bool { return vecs[i].name < vecs[j].name })
	for _, v := range vecs {
		v.write(w)
	}
}

func (v *HistVec) write(w io.Writer) {
	v.mu.RLock()
	values := make([]string, 0, len(v.m))
	for val := range v.m {
		values = append(values, val)
	}
	children := make([]*Histogram, len(values))
	sort.Strings(values)
	for i, val := range values {
		children[i] = v.m[val]
	}
	v.mu.RUnlock()
	if len(values) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s Seconds histogram keyed by %s.\n# TYPE %s histogram\n", v.name, EscapeHelp(v.label), v.name)
	for i, val := range values {
		h := children[i]
		lv := EscapeLabel(val)
		var cum int64
		for bi, bound := range h.bounds {
			cum += h.buckets[bi].Load()
			fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"%s\"} %d\n", v.name, v.label, lv, formatFloat(bound), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", v.name, v.label, lv, cum)
		fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %s\n", v.name, v.label, lv, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", v.name, v.label, lv, h.Count())
	}
}

// HistSnapshot is one histogram's state at a point in time: raw
// (non-cumulative) bucket counts over the registering family's bounds,
// plus count and sum. Because every histogram in the registry shares
// DefBuckets, snapshots from different stages and different replicas
// are directly addable — the basis of the /fleetz merged view.
type HistSnapshot struct {
	Buckets []int64 `json:"buckets"` // len = len(bounds)+1; last is +Inf
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Buckets: make([]int64, len(h.buckets))}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.Count()
	s.Sum = h.Sum()
	return s
}

// Merge returns the element-wise sum of two snapshots. Mismatched
// bucket layouts (different bound sets) fall back to count/sum only.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	if len(s.Buckets) == 0 {
		out.Buckets = append([]int64(nil), o.Buckets...)
		return out
	}
	if len(o.Buckets) == 0 || len(o.Buckets) != len(s.Buckets) {
		out.Buckets = append([]int64(nil), s.Buckets...)
		return out
	}
	out.Buckets = make([]int64, len(s.Buckets))
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) from the snapshot
// over the given bucket bounds, returning the upper bound of the
// bucket containing the quantile (the conservative estimate Prometheus
// itself would give with le-based buckets). Returns 0 on no data.
func (s HistSnapshot) Quantile(q float64, bounds []float64) float64 {
	if s.Count == 0 || len(s.Buckets) != len(bounds)+1 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range bounds {
		cum += s.Buckets[i]
		if cum >= rank {
			return b
		}
	}
	// Quantile lands in the +Inf bucket: report the last finite bound
	// (all we can say is "above it"; callers know the bucket layout).
	return bounds[len(bounds)-1]
}

// Snapshots captures every child of the family, keyed by label value.
func (v *HistVec) Snapshots() map[string]HistSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(v.m))
	for name, h := range v.m {
		out[name] = h.Snapshot()
	}
	return out
}

// StageSnapshots captures the qgdp_stage_seconds family — the
// per-stage histograms merged into the /fleetz view.
func StageSnapshots() map[string]HistSnapshot {
	return stageVec.Snapshots()
}

// MergeHistMaps folds label-keyed snapshot maps from several replicas.
func MergeHistMaps(maps ...map[string]HistSnapshot) map[string]HistSnapshot {
	out := map[string]HistSnapshot{}
	for _, m := range maps {
		for k, s := range m {
			out[k] = out[k].Merge(s)
		}
	}
	return out
}

// StageSums snapshots total observed seconds per stage — the input to
// the "histograms sum to wall time" acceptance check and the /tracez
// stage index.
func StageSums() map[string]float64 {
	stageVec.mu.RLock()
	defer stageVec.mu.RUnlock()
	out := make(map[string]float64, len(stageVec.m))
	for name, h := range stageVec.m {
		out[name] = h.Sum()
	}
	return out
}
