// Package dplace is qGDP-DP, the detailed placement engine of §III-E
// (Algorithm 2): it scans the legalized layout for problem resonators —
// non-unified (|C_e| > 1), hotspot-involved (H_e > 0), or crossing
// another resonator's route — builds a focused window around each,
// extracts the window's resonators, re-places them with maze routing,
// and keeps the new positions only when the window's cluster count,
// hotspot weight, and crossing count have not regressed (with at least
// one strict improvement).
//
// The engine maintains one routing grid for the whole refinement run and
// mutates it incrementally — rip-ups and placements apply block/unblock
// deltas through a per-cell occupancy count, and the per-candidate
// restriction to the problem window is a maze.Grid window instead of a
// mass-block of every outside cell. Resonator routes and their bounding
// boxes are cached and invalidated only for the resonators a window
// touches, and the window objective uses the group-restricted metric
// kernels, so a candidate costs work proportional to its window rather
// than to the whole layout. The accepted layouts are identical to the
// rebuild-per-candidate reference placer.
package dplace

import (
	"math"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/kernstats"
	"repro/internal/maze"
	"repro/internal/metrics"
	"repro/internal/netlist"
)

// Params tunes the detailed placer.
type Params struct {
	// Metrics are the hotspot thresholds shared with the evaluation.
	Metrics metrics.Params
	// WindowMargin expands the problem window (cells).
	WindowMargin int
	// MaxAdjacent caps how many neighbor resonators join a window.
	MaxAdjacent int
	// MaxPasses bounds the scan-and-fix iterations.
	MaxPasses int
}

// DefaultParams mirrors the evaluation setup.
func DefaultParams() Params {
	return Params{
		Metrics:      metrics.DefaultParams(),
		WindowMargin: 2,
		MaxAdjacent:  3,
		MaxPasses:    3,
	}
}

// Result reports what the detailed placer did.
type Result struct {
	// Considered counts candidate windows examined.
	Considered int
	// Accepted counts windows whose re-placement was kept.
	Accepted int
	// Passes is the number of full scans performed.
	Passes int
}

// Refine runs Algorithm 2 on a legalized netlist, mutating wire-block
// positions in place. Qubits never move.
func Refine(n *netlist.Netlist, p Params) (Result, error) {
	start := time.Now()
	defer func() { kernstats.DPRefine.Observe(time.Since(start)) }()

	r := newRefiner(n, p)
	var res Result
	for pass := 0; pass < p.MaxPasses; pass++ {
		res.Passes = pass + 1
		improved := false
		for _, e := range r.candidates() {
			res.Considered++
			if r.refineWindow(e) {
				res.Accepted++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return res, nil
}

// refiner carries the persistent state of one Refine run: the
// incrementally-mutated routing grid, the per-cell block occupancy, and
// the route cache.
type refiner struct {
	n *netlist.Netlist
	p Params

	g      *maze.Grid
	w, h   int
	static []bool  // qubit-footprint cells, never unblocked
	occ    []int32 // wire blocks per cell; >0 means blocked

	routes []geom.Polyline // cached n.Route(e); nil = recompute
	boxes  []geom.Rect     // bounding boxes of the cached routes

	inGroup []bool

	// Per-window scratch.
	savedID  []int
	savedPos []geom.Pt
	placed   []maze.Cell
	srcs     []maze.Cell
	dsts     []maze.Cell
	crossing []int
}

func newRefiner(n *netlist.Netlist, p Params) *refiner {
	w := int(math.Round(n.W))
	h := int(math.Round(n.H))
	r := &refiner{
		n: n, p: p,
		g:        maze.NewGrid(w, h),
		w:        w,
		h:        h,
		static:   make([]bool, w*h),
		occ:      make([]int32, w*h),
		routes:   make([]geom.Polyline, len(n.Resonators)),
		boxes:    make([]geom.Rect, len(n.Resonators)),
		inGroup:  make([]bool, len(n.Resonators)),
		crossing: make([]int, len(n.Resonators)),
	}
	// Qubit macros are permanent obstacles.
	for qi := range n.Qubits {
		rect := n.Qubits[qi].Rect()
		x0 := int(math.Floor(rect.MinX() + geom.Eps))
		y0 := int(math.Floor(rect.MinY() + geom.Eps))
		x1 := int(math.Ceil(rect.MaxX() - geom.Eps))
		y1 := int(math.Ceil(rect.MaxY() - geom.Eps))
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				c := maze.Cell{X: x, Y: y}
				if r.g.InBounds(c) {
					r.static[y*w+x] = true
					r.g.Block(c)
				}
			}
		}
	}
	// Every wire block occupies its cell.
	for i := range n.Blocks {
		r.occupy(cellOf(n.Blocks[i].Pos))
	}
	return r
}

// occupy adds one block to a cell, blocking it on the 0 -> 1 edge.
// Out-of-bounds cells are ignored (they are implicitly blocked).
func (r *refiner) occupy(c maze.Cell) {
	if !r.g.InBounds(c) {
		return
	}
	i := c.Y*r.w + c.X
	r.occ[i]++
	if r.occ[i] == 1 {
		r.g.Block(c)
	}
}

// vacate removes one block from a cell, unblocking it on the 1 -> 0 edge
// unless a qubit footprint pins it.
func (r *refiner) vacate(c maze.Cell) {
	if !r.g.InBounds(c) {
		return
	}
	i := c.Y*r.w + c.X
	r.occ[i]--
	if r.occ[i] == 0 && !r.static[i] {
		r.g.Unblock(c)
	}
}

// route returns resonator e's cached routing polyline, recomputing it
// after an invalidation.
func (r *refiner) route(e int) geom.Polyline {
	if r.routes[e] == nil {
		r.routes[e] = r.n.Route(e)
		r.boxes[e] = r.routes[e].BBox()
	}
	return r.routes[e]
}

func (r *refiner) invalidateRoutes(group []int) {
	for _, e := range group {
		r.routes[e] = nil
	}
}

// candidates returns the resonators violating a quality objective:
// E_c (non-unified), E_h (hotspots), and crossing participants, ordered
// worst-first (cluster count, then crossings, then hotspot weight, then
// ID).
func (r *refiner) candidates() []int {
	n := r.n
	hot := metrics.ResonatorHotspotAll(n, r.p.Metrics)
	crossing := r.crossing
	for e := range crossing {
		crossing[e] = 0
	}
	for i := range n.Resonators {
		r.route(i)
	}
	for i := range n.Resonators {
		for j := i + 1; j < len(n.Resonators); j++ {
			if !r.boxes[i].Touches(r.boxes[j]) {
				continue
			}
			if c := geom.CrossCount(r.routes[i], r.routes[j]); c > 0 {
				crossing[i] += c
				crossing[j] += c
			}
		}
	}
	type cand struct {
		e        int
		clusters int
		hot      float64
		crosses  int
	}
	var cs []cand
	for e := range n.Resonators {
		cl := n.ClusterCount(e)
		if cl > 1 || hot[e] > 0 || crossing[e] > 0 {
			cs = append(cs, cand{e, cl, hot[e], crossing[e]})
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].clusters != cs[j].clusters {
			return cs[i].clusters > cs[j].clusters
		}
		if cs[i].crosses != cs[j].crosses {
			return cs[i].crosses > cs[j].crosses
		}
		if cs[i].hot != cs[j].hot {
			return cs[i].hot > cs[j].hot
		}
		return cs[i].e < cs[j].e
	})
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.e
	}
	return out
}

// windowObjective is the Algorithm-2 acceptance triple, restricted to
// the window's resonators.
type windowObjective struct {
	clusters  int
	hotspots  float64
	crossings int
}

func (a windowObjective) betterThan(b windowObjective) bool {
	const eps = 1e-9
	if a.clusters > b.clusters || a.hotspots > b.hotspots+eps || a.crossings > b.crossings {
		return false
	}
	return a.clusters < b.clusters || a.hotspots < b.hotspots-eps || a.crossings < b.crossings
}

// refineWindow attempts one window rip-up/re-place; reports acceptance.
func (r *refiner) refineWindow(e int) bool {
	n := r.n
	group := r.windowGroup(e)
	for _, ge := range group {
		r.inGroup[ge] = true
	}
	defer func() {
		for _, ge := range group {
			r.inGroup[ge] = false
		}
	}()
	win := r.windowRect(group)

	before := r.measure(group)

	// Snapshot for revert, and rip up the group's cells.
	r.savedID = r.savedID[:0]
	r.savedPos = r.savedPos[:0]
	for _, ge := range group {
		for _, id := range n.Resonators[ge].Blocks {
			r.savedID = append(r.savedID, id)
			r.savedPos = append(r.savedPos, n.Blocks[id].Pos)
			r.vacate(cellOf(n.Blocks[id].Pos))
		}
	}

	// Restrict routing to the window.
	x0 := int(math.Floor(win.MinX() + geom.Eps))
	y0 := int(math.Floor(win.MinY() + geom.Eps))
	x1 := int(math.Ceil(win.MaxX() - geom.Eps))
	y1 := int(math.Ceil(win.MaxY() - geom.Eps))
	r.g.SetWindow(x0, y0, x1, y1)

	// Re-place each group resonator: the problem resonator first, then
	// neighbors in group order.
	r.placed = r.placed[:0]
	ok := true
	for _, ge := range group {
		if !r.routeResonator(ge) {
			ok = false
			break
		}
	}
	r.g.ClearWindow()
	r.invalidateRoutes(group)

	if !ok {
		r.revert()
		return false
	}
	after := r.measure(group)
	if !after.betterThan(before) {
		r.revert()
		r.invalidateRoutes(group)
		return false
	}
	return true
}

// revert restores the snapshot positions and the matching occupancy.
func (r *refiner) revert() {
	for _, c := range r.placed {
		r.vacate(c)
	}
	for i, id := range r.savedID {
		r.n.Blocks[id].Pos = r.savedPos[i]
		r.occupy(cellOf(r.savedPos[i]))
	}
}

// windowGroup returns e plus up to MaxAdjacent resonators whose blocks
// lie nearest to e's blocks (the "adjacent resonators" of Fig. 7).
func (r *refiner) windowGroup(e int) []int {
	n := r.n
	type near struct {
		e int
		d float64
	}
	var nears []near
	for o := range n.Resonators {
		if o == e {
			continue
		}
		d := resonatorDistance(n, e, o)
		if d <= float64(r.p.WindowMargin)+1 {
			nears = append(nears, near{o, d})
		}
	}
	sort.Slice(nears, func(i, j int) bool {
		if nears[i].d != nears[j].d {
			return nears[i].d < nears[j].d
		}
		return nears[i].e < nears[j].e
	})
	group := []int{e}
	for _, nr := range nears {
		if len(group) > r.p.MaxAdjacent {
			break
		}
		group = append(group, nr.e)
	}
	return group
}

// resonatorDistance is the minimum block-to-block center distance.
func resonatorDistance(n *netlist.Netlist, a, b int) float64 {
	best := math.Inf(1)
	for _, ia := range n.Resonators[a].Blocks {
		pa := n.Blocks[ia].Pos
		for _, ib := range n.Resonators[b].Blocks {
			if d := pa.Dist(n.Blocks[ib].Pos); d < best {
				best = d
			}
		}
	}
	return best
}

// windowRect is the bounding box of the group's blocks and endpoint
// qubits, expanded by the margin and clipped to the substrate.
func (r *refiner) windowRect(group []int) geom.Rect {
	n := r.n
	first := true
	var box geom.Rect
	add := func(rc geom.Rect) {
		if first {
			box = rc
			first = false
		} else {
			box = box.Union(rc)
		}
	}
	for _, e := range group {
		res := &n.Resonators[e]
		add(n.Qubits[res.Q1].Rect())
		add(n.Qubits[res.Q2].Rect())
		for _, id := range res.Blocks {
			add(n.BlockRect(id))
		}
	}
	box = box.Expand(float64(r.p.WindowMargin))
	// Clip to substrate.
	minX := math.Max(0, box.MinX())
	maxX := math.Min(n.W, box.MaxX())
	minY := math.Max(0, box.MinY())
	maxY := math.Min(n.H, box.MaxY())
	return geom.NewRect((minX+maxX)/2, (minY+maxY)/2, maxX-minX, maxY-minY)
}

// measure computes the acceptance objective for the group: cluster
// counts over the group, plus the group-restricted hotspot weight and
// route-crossing count. The values match the full-layout metrics
// filtered to the group, term for term.
func (r *refiner) measure(group []int) windowObjective {
	n := r.n
	var o windowObjective
	for _, e := range group {
		o.clusters += n.ClusterCount(e)
	}
	o.hotspots = metrics.GroupHotspotWeight(n, r.p.Metrics, r.inGroup)
	for i := range n.Resonators {
		r.route(i)
	}
	for i := range n.Resonators {
		for j := i + 1; j < len(n.Resonators); j++ {
			if !r.inGroup[i] && !r.inGroup[j] {
				continue
			}
			if !r.boxes[i].Touches(r.boxes[j]) {
				continue
			}
			o.crossings += geom.CrossCount(r.routes[i], r.routes[j])
		}
	}
	return o
}

// routeResonator maze-routes resonator e between its endpoint qubits and
// assigns its wire blocks along the (thickened) path, committing each
// cell to the occupancy grid.
func (r *refiner) routeResonator(e int) bool {
	n := r.n
	res := &n.Resonators[e]
	r.srcs = r.appendQubitAdjacent(r.srcs[:0], res.Q1)
	r.dsts = r.appendQubitAdjacent(r.dsts[:0], res.Q2)
	path := r.g.Route(r.srcs, r.dsts)
	if path == nil {
		return false
	}
	cells := r.g.Thicken(path, len(res.Blocks))
	if cells == nil {
		return false
	}
	for i, id := range res.Blocks {
		c := cells[i]
		n.Blocks[id].Pos = geom.Pt{X: float64(c.X) + 0.5, Y: float64(c.Y) + 0.5}
		r.occupy(c)
		r.placed = append(r.placed, c)
	}
	return true
}

func (r *refiner) appendQubitAdjacent(dst []maze.Cell, q int) []maze.Cell {
	rect := r.n.Qubits[q].Rect()
	x0 := int(math.Floor(rect.MinX() + geom.Eps))
	y0 := int(math.Floor(rect.MinY() + geom.Eps))
	x1 := int(math.Ceil(rect.MaxX() - geom.Eps))
	y1 := int(math.Ceil(rect.MaxY() - geom.Eps))
	return r.g.AppendAdjacent(dst, x0, y0, x1, y1)
}

func cellOf(p geom.Pt) maze.Cell {
	return maze.Cell{X: int(math.Floor(p.X)), Y: int(math.Floor(p.Y))}
}
