// Package metrics evaluates quantum layout quality: cluster counts and
// resonator integrity (Eq. 3), the frequency-hotspot proportion P_h
// (Eq. 4), the hotspot-qubit count H_Q, resonator crossing points X
// (airbridges), and qubit spacing violations. These are the observables
// of Fig. 9 and Table III and the inputs to the fidelity model (Eq. 7).
package metrics

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/freq"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/spatial"
)

// Params are the spatial and spectral thresholds of the hotspot metric.
type Params struct {
	// DMax is the range of the spatial proximity kernel in layout
	// units: pairs with a larger gap contribute nothing.
	DMax float64
	// DeltaQubit / DeltaResonator are the frequency-proximity thresholds
	// Δc of Eq. 4 for qubit-qubit and resonator-resonator pairs.
	DeltaQubit     float64
	DeltaResonator float64
	// MinQubitSpacing is the quantum spacing constraint (in layout
	// units) whose violation defines crosstalk-coupled qubit pairs.
	MinQubitSpacing float64
	// Par is the parallelism budget the sharded crossing scan draws
	// lanes from; nil uses the process-wide default. Lane count never
	// changes any metric value, so it is excluded from request hashing.
	Par *parallel.Budget `json:"-"`
}

// DefaultParams mirrors DESIGN.md §6.
func DefaultParams() Params {
	return Params{
		DMax:            1.6,
		DeltaQubit:      freq.DeltaQubit,
		DeltaResonator:  freq.DeltaResonator,
		MinQubitSpacing: 1.0,
	}
}

// PairHotspot is one contributing pair of the P_h sum: two components
// that are both spatially proximate and frequency-close.
type PairHotspot struct {
	// Qubit IDs (>= 0) or -1; EdgeI/EdgeJ are resonator IDs or -1.
	QubitI, QubitJ int
	EdgeI, EdgeJ   int
	// Weight is the pair's Eq. 4 numerator term:
	// sharedLength · proximity · τ.
	Weight float64
	// SharedLen and Gap describe the geometry (for the fidelity model's
	// adjacency capacitance).
	SharedLen, Gap float64
	// Tau is the frequency proximity factor.
	Tau float64
}

// Report is the full layout-quality summary.
type Report struct {
	TotalClusters   int
	Unified         int
	TotalResonators int
	Crossings       int
	Ph              float64 // percent
	HQ              int
	QubitViolations int
	Hotspots        []PairHotspot
}

// Analyze computes the full report.
func Analyze(n *netlist.Netlist, p Params) Report {
	r := Report{
		TotalClusters:   n.TotalClusters(),
		Unified:         n.UnifiedCount(),
		TotalResonators: len(n.Resonators),
		Crossings:       len(CrossingPairsPar(n, p.Par, 0)),
	}
	r.Hotspots = Hotspots(n, p)
	r.Ph = PhFromHotspots(n, r.Hotspots)
	r.HQ = HotspotQubits(n, r.Hotspots)
	r.QubitViolations = len(QubitViolationPairs(n, p))
	return r
}

// Hotspots enumerates all frequency-hotspot pairs of the layout:
// qubit-qubit pairs and wire-block pairs of different resonators that
// are spatially proximate (gap < DMax) and frequency-close (τ > 0).
// Blocks of the same resonator are one physical device and never pair.
func Hotspots(n *netlist.Netlist, p Params) []PairHotspot {
	var out []PairHotspot

	// Qubit-qubit pairs (few; quadratic scan is fine).
	for i := range n.Qubits {
		ri := n.Qubits[i].Rect()
		for j := i + 1; j < len(n.Qubits); j++ {
			rj := n.Qubits[j].Rect()
			gap := ri.Gap(rj)
			if gap >= p.DMax {
				continue
			}
			tau := freq.Tau(n.Qubits[i].Freq, n.Qubits[j].Freq, p.DeltaQubit)
			if tau <= 0 {
				continue
			}
			shared := ri.SharedLength(rj)
			if shared <= 0 {
				continue
			}
			w := shared * geom.ProximityKernel(gap, p.DMax) * tau
			if w <= 0 {
				continue
			}
			out = append(out, PairHotspot{
				QubitI: i, QubitJ: j, EdgeI: -1, EdgeJ: -1,
				Weight: w, SharedLen: shared, Gap: gap, Tau: tau,
			})
		}
	}

	// Block-block pairs via the shared bucket grid (blocks are numerous).
	forEachBlockHotspot(n, p, nil, func(h PairHotspot) {
		out = append(out, h)
	})
	return out
}

// gridPool recycles the bucket-grid scratch across metric evaluations;
// the hotspot enumeration runs on every detailed-placement window, so
// rebuilding a map hash per call would dominate the DP profile.
var gridPool = sync.Pool{New: func() any { return new(spatial.Grid) }}

// forEachBlockHotspot enumerates proximate block-block hotspot pairs in
// the canonical order (ascending primary block, fixed neighbor-bucket
// sweep, ascending secondary within a bucket) and calls emit for each.
// When include is non-nil, pairs whose resonator pair it rejects are
// skipped before any geometry is computed — the enumeration order of
// surviving pairs, and therefore any order-sensitive accumulation over
// them, is unchanged.
func forEachBlockHotspot(n *netlist.Netlist, p Params, include func(ei, ej int) bool, emit func(PairHotspot)) {
	cell := math.Max(2, p.DMax+1)
	grid := gridPool.Get().(*spatial.Grid)
	defer gridPool.Put(grid)
	grid.Build(cell, len(n.Blocks), func(i int) (float64, float64) {
		return n.Blocks[i].Pos.X, n.Blocks[i].Pos.Y
	})
	for i := range n.Blocks {
		bi := &n.Blocks[i]
		kx, ky := grid.Key(bi.Pos.X, bi.Pos.Y)
		ri := n.BlockRect(i)
		fi := n.Resonators[bi.Edge].Freq
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j32 := range grid.Bucket(kx+dx, ky+dy) {
					j := int(j32)
					if j <= i {
						continue
					}
					bj := &n.Blocks[j]
					if bj.Edge == bi.Edge {
						continue
					}
					if include != nil && !include(bi.Edge, bj.Edge) {
						continue
					}
					rj := n.BlockRect(j)
					gap := ri.Gap(rj)
					if gap >= p.DMax {
						continue
					}
					fj := n.Resonators[bj.Edge].Freq
					tau := freq.Tau(fi, fj, p.DeltaResonator)
					if tau <= 0 {
						continue
					}
					shared := ri.SharedLength(rj)
					if shared <= 0 {
						continue
					}
					w := shared * geom.ProximityKernel(gap, p.DMax) * tau
					if w <= 0 {
						continue
					}
					emit(PairHotspot{
						QubitI: -1, QubitJ: -1, EdgeI: bi.Edge, EdgeJ: bj.Edge,
						Weight: w, SharedLen: shared, Gap: gap, Tau: tau,
					})
				}
			}
		}
	}
}

// GroupHotspotWeight sums the weights of the block-block hotspot pairs
// that involve at least one resonator with inGroup[e] true. It equals,
// bit for bit, filtering Hotspots over the same predicate and summing in
// list order (qubit-qubit pairs carry EdgeI = EdgeJ = -1 and never
// match) — but skips all geometry work for pairs outside the group,
// which is what makes the detailed placer's per-window objective cheap.
func GroupHotspotWeight(n *netlist.Netlist, p Params, inGroup []bool) float64 {
	var sum float64
	forEachBlockHotspot(n, p,
		func(ei, ej int) bool { return inGroup[ei] || inGroup[ej] },
		func(h PairHotspot) { sum += h.Weight })
	return sum
}

// PhFromHotspots computes the Eq. 4 ratio (as a percentage) from an
// already-enumerated hotspot list: the weighted pair sum normalized by
// total component area.
func PhFromHotspots(n *netlist.Netlist, hotspots []PairHotspot) float64 {
	var num float64
	for _, h := range hotspots {
		num += h.Weight
	}
	var area float64
	for _, q := range n.Qubits {
		area += q.Size * q.Size
	}
	area += float64(len(n.Blocks)) * n.BlockSize * n.BlockSize
	if area <= 0 {
		return 0
	}
	return 100 * num / area
}

// Ph is the one-call version of the Eq. 4 metric.
func Ph(n *netlist.Netlist, p Params) float64 {
	return PhFromHotspots(n, Hotspots(n, p))
}

// HotspotQubits counts the distinct qubits under crosstalk risk H_Q:
// members of qubit-qubit hotspot pairs plus the endpoint qubits of
// resonators involved in resonator-resonator hotspots.
func HotspotQubits(n *netlist.Netlist, hotspots []PairHotspot) int {
	hot := map[int]bool{}
	for _, h := range hotspots {
		if h.QubitI >= 0 {
			hot[h.QubitI] = true
			hot[h.QubitJ] = true
			continue
		}
		for _, e := range []int{h.EdgeI, h.EdgeJ} {
			hot[n.Resonators[e].Q1] = true
			hot[n.Resonators[e].Q2] = true
		}
	}
	return len(hot)
}

// ResonatorHotspot returns H_e: the summed hotspot weight involving
// resonator e's wire blocks (or its endpoint qubits' pairs do not count;
// Algorithm 2 targets resonators). Used to build E_h in detailed
// placement.
func ResonatorHotspot(n *netlist.Netlist, p Params, e int) float64 {
	var sum float64
	for _, h := range Hotspots(n, p) {
		if h.EdgeI == e || h.EdgeJ == e {
			sum += h.Weight
		}
	}
	return sum
}

// ResonatorHotspotAll returns H_e for every resonator in one pass.
func ResonatorHotspotAll(n *netlist.Netlist, p Params) []float64 {
	out := make([]float64, len(n.Resonators))
	for _, h := range Hotspots(n, p) {
		if h.EdgeI >= 0 {
			out[h.EdgeI] += h.Weight
		}
		if h.EdgeJ >= 0 {
			out[h.EdgeJ] += h.Weight
		}
	}
	return out
}

// QubitViolationPairs returns the qubit pairs violating the quantum
// minimum-spacing constraint; these pairs behave like directly
// capacitively-coupled qubits in the fidelity model (ε_g of Eq. 8).
type Violation struct {
	I, J      int
	Gap       float64
	SharedLen float64
}

// QubitViolationPairs lists qubit pairs closer than MinQubitSpacing.
func QubitViolationPairs(n *netlist.Netlist, p Params) []Violation {
	var out []Violation
	for i := range n.Qubits {
		ri := n.Qubits[i].Rect()
		for j := i + 1; j < len(n.Qubits); j++ {
			rj := n.Qubits[j].Rect()
			gap := ri.Gap(rj)
			if gap < p.MinQubitSpacing-geom.Eps {
				out = append(out, Violation{
					I: i, J: j, Gap: gap, SharedLen: ri.SharedLength(rj),
				})
			}
		}
	}
	return out
}

// CrossingCount returns X: the number of proper crossings between the
// routes of different resonators. Every crossing requires an airbridge
// whose ~3.5 fF parasitic capacitance couples the two resonators.
func CrossingCount(n *netlist.Netlist) int {
	return len(CrossingPairs(n))
}

// CrossPoint records one resonator-route crossing.
type CrossPoint struct {
	EdgeI, EdgeJ int
}

// CrossingPairs lists every route crossing (one entry per crossing
// point, so two routes crossing twice contribute two entries).
func CrossingPairs(n *netlist.Netlist) []CrossPoint {
	return CrossingPairsPar(n, nil, 0)
}

// crossScratch holds the pooled buffers of the sharded crossing scan.
type crossScratch struct {
	routes []geom.Polyline
	boxes  []geom.Rect
	bounds []int
	shards [][]CrossPoint
}

var crossPool = sync.Pool{New: func() any { return new(crossScratch) }}

// CrossingPairsPar is CrossingPairs with the O(E²) pair sweep sharded
// over lanes from the given parallelism budget (nil: the process-wide
// default; laneCap 0: GOMAXPROCS). Shards cover contiguous primary
// ranges balanced by pair count, each shard collects its crossings in
// scan order, and the shards are concatenated in shard order — the
// output is identical, entry for entry, to the serial scan for every
// lane count.
func CrossingPairsPar(n *netlist.Netlist, b *parallel.Budget, laneCap int) []CrossPoint {
	m := len(n.Resonators)
	s := crossPool.Get().(*crossScratch)
	defer func() {
		clear(s.routes) // do not retain route geometry in the pool
		crossPool.Put(s)
	}()
	if cap(s.routes) < m {
		s.routes = make([]geom.Polyline, m)
		s.boxes = make([]geom.Rect, m)
	}
	s.routes = s.routes[:m]
	s.boxes = s.boxes[:m]
	for e := 0; e < m; e++ {
		s.routes[e] = n.Route(e)
		s.boxes[e] = s.routes[e].BBox()
	}

	if laneCap <= 0 {
		laneCap = runtime.GOMAXPROCS(0)
	}
	grant := b.Acquire(laneCap)
	defer grant.Release()
	lanes := grant.Lanes()
	if lanes > m {
		lanes = m
	}

	if lanes <= 1 {
		var out []CrossPoint
		for i := 0; i < m; i++ {
			out = scanPrimary(s, i, out)
		}
		return out
	}

	// Contiguous primary shards, balanced by the triangular pair count
	// so late (short) rows don't starve the last lanes.
	s.bounds = s.bounds[:0]
	s.bounds = append(s.bounds, 0)
	total := m * (m - 1) / 2
	acc, nextCut := 0, (total+lanes-1)/lanes
	for i := 0; i < m && len(s.bounds) < lanes; i++ {
		acc += m - 1 - i
		if acc >= nextCut*len(s.bounds) {
			s.bounds = append(s.bounds, i+1)
		}
	}
	for len(s.bounds) < lanes+1 {
		s.bounds = append(s.bounds, m)
	}
	for len(s.shards) < lanes {
		s.shards = append(s.shards, nil)
	}
	bounds := s.bounds
	grant.Run(lanes, func(lane int) {
		buf := s.shards[lane][:0]
		for i := bounds[lane]; i < bounds[lane+1]; i++ {
			buf = scanPrimary(s, i, buf)
		}
		s.shards[lane] = buf
	})

	// Deterministic reduction: concatenate in shard order (ascending
	// primary), reproducing the serial output exactly.
	total = 0
	for lane := 0; lane < lanes; lane++ {
		total += len(s.shards[lane])
	}
	out := make([]CrossPoint, 0, total)
	for lane := 0; lane < lanes; lane++ {
		out = append(out, s.shards[lane]...)
	}
	return out
}

// scanPrimary appends the crossings of primary route i with every
// later route to dst, in the canonical j order.
func scanPrimary(s *crossScratch, i int, dst []CrossPoint) []CrossPoint {
	for j := i + 1; j < len(s.routes); j++ {
		if !s.boxes[i].Touches(s.boxes[j]) {
			continue
		}
		for k := 0; k < geom.CrossCount(s.routes[i], s.routes[j]); k++ {
			dst = append(dst, CrossPoint{EdgeI: i, EdgeJ: j})
		}
	}
	return dst
}
