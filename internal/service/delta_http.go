package service

// HTTP surface of the delta engine:
//
//	POST /v1/layout/delta   incremental layout (base request + edit list)
//	GET  /v1/envelope       cluster mode: one layout envelope by store key
//
// The delta endpoint is ring-routed by the DELTA key (the repaired
// result is a first-class cache entry, owned like any layout), which
// requires the POST body to be replayable: routedDeltaHandler buffers
// it once and installs GetBody so a forward retry re-sends intact.
// /v1/envelope is the peer-to-peer base-fetch and read-repair carrier;
// it serves bytes straight from the local store and never computes.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/kernstats"
	"repro/internal/layoutio"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/topology"
)

// maxDeltaBodyBytes bounds one POST /v1/layout/delta body. Edit lists
// are tiny; the bound exists so the routing layer can buffer bodies
// without trusting the client.
const maxDeltaBodyBytes = 1 << 20

// deltaSpec is the POST /v1/layout/delta body: a jobSpecItem-shaped
// base request plus the edit list.
type deltaSpec struct {
	Topology string          `json:"topology"`
	Strategy string          `json:"strategy,omitempty"`
	Config   *core.Config    `json:"config,omitempty"`
	Seed     *int64          `json:"seed,omitempty"`
	Mappings *int            `json:"mappings,omitempty"`
	Padding  *float64        `json:"padding,omitempty"`
	Edits    []topology.Edit `json:"edits"`
}

// deltaRequestFromBody decodes and validates a delta body into the
// engine request, building the base config exactly like the query and
// jobs APIs (shared validators — the base key must match what a plain
// /v1/layout request for the same parameters would hash to).
func deltaRequestFromBody(body io.Reader) (DeltaRequest, error) {
	var spec deltaSpec
	if err := json.NewDecoder(io.LimitReader(body, maxDeltaBodyBytes)).Decode(&spec); err != nil {
		return DeltaRequest{}, fmt.Errorf("bad delta body: %w", err)
	}
	strategy, err := resolveTarget(spec.Topology, spec.Strategy)
	if err != nil {
		return DeltaRequest{}, err
	}
	cfg := core.DefaultConfig()
	if spec.Config != nil {
		cfg = *spec.Config
		m, p := cfg.Mappings, cfg.GP.Padding
		if err := applyConfigOverrides(&cfg, nil, &m, &p); err != nil {
			return DeltaRequest{}, err
		}
	}
	if err := applyConfigOverrides(&cfg, spec.Seed, spec.Mappings, spec.Padding); err != nil {
		return DeltaRequest{}, err
	}
	if len(spec.Edits) == 0 {
		return DeltaRequest{}, errors.New("missing edits")
	}
	// Validate the edit list here so a malformed list is the client's
	// 400, not an engine error surfacing as a 500. The engine
	// re-canonicalizes (idempotent) for its cache key.
	dev, err := topology.ByName(spec.Topology)
	if err != nil {
		return DeltaRequest{}, err
	}
	if _, err := topology.Canonicalize(dev, spec.Edits); err != nil {
		return DeltaRequest{}, fmt.Errorf("bad edit list: %w", err)
	}
	return DeltaRequest{
		LayoutRequest: LayoutRequest{Topology: spec.Topology, Strategy: strategy, Config: cfg},
		Edits:         spec.Edits,
	}, nil
}

// deltaResponse is the /v1/layout/delta body: the layout response plus
// which repair path produced it.
type deltaResponse struct {
	Topology    string          `json:"topology"`
	Strategy    core.Strategy   `json:"strategy"`
	Seed        int64           `json:"seed"`
	CacheHit    bool            `json:"cache_hit"`
	Shared      bool            `json:"shared"`
	Path        string          `json:"delta_path,omitempty"`
	Report      metrics.Report  `json:"report"`
	QubitMs     float64         `json:"tq_ms"`
	ResonatorMs float64         `json:"te_ms"`
	DPMs        float64         `json:"dp_ms"`
	Layout      json.RawMessage `json:"layout"`
	TraceID     string          `json:"trace_id,omitempty"`
	Trace       *obs.SpanNode   `json:"trace,omitempty"`
}

func handleLayoutDelta(e *Engine, w http.ResponseWriter, r *http.Request) {
	req, err := deltaRequestFromBody(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := e.LayoutDelta(r.Context(), req)
	if err != nil {
		writeRequestError(e, r.Context(), w, err)
		return
	}
	var buf bytes.Buffer
	if err := layoutio.WriteJSON(&buf, res.Layout.Netlist); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	cfg := e.withBudget(req.Config)
	cfg.Obs = obs.SpanFrom(r.Context())
	resp := deltaResponse{
		Topology:    req.Topology,
		Strategy:    req.Strategy,
		Seed:        req.Config.GP.Seed,
		CacheHit:    res.CacheHit,
		Shared:      res.Shared,
		Path:        res.Path,
		Report:      core.Analyze(res.Layout.Netlist, cfg),
		QubitMs:     float64(res.Layout.QubitTime.Nanoseconds()) / 1e6,
		ResonatorMs: float64(res.Layout.ResonatorTime.Nanoseconds()) / 1e6,
		DPMs:        float64(res.Layout.DPTime.Nanoseconds()) / 1e6,
		Layout:      json.RawMessage(buf.Bytes()),
	}
	if r.URL.Query().Get("debug") == "trace" {
		if sp := obs.SpanFrom(r.Context()); sp != nil {
			snap := sp.Trace().Snapshot()
			resp.TraceID = snap.ID
			resp.Trace = snap.Root
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// routedDeltaHandler ring-routes POST /v1/layout/delta by the delta
// key. The body is buffered up front: the key needs it, the local
// handler re-reads it, and a forward (plus its one retry) replays it
// via GetBody. An unparseable body skips routing — the local handler
// owns the 400.
func routedDeltaHandler(e *Engine, local http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, maxDeltaBodyBytes+1))
		if err != nil || len(data) > maxDeltaBodyBytes {
			writeError(w, http.StatusBadRequest, errors.New("unreadable or oversized delta body"))
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(data))
		r.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		}
		req, err := deltaRequestFromBody(bytes.NewReader(data))
		if err != nil {
			local(w, r)
			return
		}
		dev, err := topology.ByName(req.Topology)
		if err != nil {
			local(w, r)
			return
		}
		edits, err := topology.Canonicalize(dev, req.Edits)
		if err != nil {
			local(w, r)
			return
		}
		dkey := deltaKey(layoutKey(req.LayoutRequest), edits)
		serveRouted(e, w, r, dkey, func() bool {
			_, ok := e.layStore.Peek(dkey)
			return ok
		}, local, nil)
	}
}

// handleEnvelope serves GET /v1/envelope?key=...: the versioned store
// envelope for one locally held layout key. 404 when this replica does
// not hold the key — the caller tries the next owner or recomputes.
func handleEnvelope(e *Engine, w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if !strings.HasPrefix(key, "layout:") {
		writeError(w, http.StatusBadRequest, errors.New("not a layout key"))
		return
	}
	lay, ok := e.layStore.Peek(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("key not held"))
		return
	}
	data, err := store.EncodeEnvelope(key, lay)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// readRepair pulls the envelope for key from the owner that just
// served a forwarded request and stores it locally, so the next
// request for the same key short-circuits without a network hop.
// Fire-and-forget on the forwarding replica; bounded by the forward
// timeout; a miss or failure simply leaves the local store as-is.
func (e *Engine) readRepair(owner, key string) {
	if storeHas(e.layStore, key) {
		return
	}
	lay, err := fetchEnvelope(context.Background(), e.cluster, owner, key)
	if err != nil {
		return
	}
	if storeHas(e.layStore, key) {
		return // raced with replication — either copy is the same bytes
	}
	e.layStore.Put(key, lay)
	kernstats.ClusterReadRepair.Add(1)
}
