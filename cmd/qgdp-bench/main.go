// Command qgdp-bench regenerates the paper's evaluation artifacts:
// Fig. 8 (fidelity grid), Fig. 9 (layout metrics), Table II (runtimes),
// and Table III (detailed placement evaluation).
//
// All experiments fan their topology × strategy × benchmark jobs out
// through one shared service engine, so independent jobs run in
// parallel and the experiments reuse each other's GP solutions,
// layouts, and fidelity values.
//
// Usage:
//
//	qgdp-bench                 # everything, 50 mappings per bar
//	qgdp-bench -exp fig8       # a single experiment
//	qgdp-bench -mappings 10    # faster, noisier fidelity bars
//	qgdp-bench -topology Grid  # restrict to one topology
//	qgdp-bench -workers 4      # bound the engine's worker pool
//	qgdp-bench -exp table2 -json BENCH_PR2.json -pr 2
//	                           # also emit a machine-readable trajectory
//	                           # point (Table II/III runtimes + kernel
//	                           # counters) for the BENCH_*.json series
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/topology"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig8, fig9, table2, table3, all")
	mappings := flag.Int("mappings", 50, "seeded mappings averaged per fidelity bar")
	topoName := flag.String("topology", "", "restrict to one topology (default: all six)")
	workers := flag.Int("workers", 0, "max concurrent pipeline computations (default GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write a trajectory point (Table II/III + kernel counters) to this file")
	pr := flag.Int("pr", 0, "PR number stamped into the -json trajectory point")
	flag.Parse()

	if err := run(*exp, *mappings, *topoName, *workers, *jsonPath, *pr); err != nil {
		fmt.Fprintln(os.Stderr, "qgdp-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, mappings int, topoName string, workers int, jsonPath string, pr int) error {
	cfg := core.DefaultConfig()
	cfg.Mappings = mappings
	runner := experiments.NewRunner(service.New(service.Options{Workers: workers}))

	devs := topology.All()
	if topoName != "" {
		dev, err := topology.ByName(topoName)
		if err != nil {
			return err
		}
		devs = []*topology.Device{dev}
	}

	want := func(name string) bool { return exp == "all" || strings.EqualFold(exp, name) }
	ran := false

	if want("fig8") {
		ran = true
		res, err := runner.Fig8(devs, cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	}
	if want("fig9") {
		ran = true
		res, err := runner.Fig9(devs, cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	}
	if want("table2") {
		ran = true
		res, err := runner.Table2(devs, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("table3") {
		ran = true
		res, err := runner.Table3(devs, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("delta") && exp != "all" {
		ran = true
		res, err := runner.DeltaBench(devs, cfg, core.QGDPDP)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	// Extensions beyond the paper's figures: the quantified Fig. 1 curve
	// and the §III-C padding sweep run only when explicitly requested.
	if want("fig1") && exp != "all" {
		ran = true
		for _, dev := range devs {
			res, err := experiments.Fig1(dev, cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		}
	}
	if want("sweep") && exp != "all" {
		ran = true
		for _, dev := range devs {
			res, err := experiments.PaddingSweep(dev, cfg, []float64{0, 0.25, 0.5, 1.0, 1.5})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (valid: fig8, fig9, table2, table3, delta, fig1, sweep, all)", exp)
	}
	if jsonPath != "" {
		// The point recomputes Table II/III through the same engine, so
		// layouts computed above are cache hits and the kernel counters
		// reflect the whole run.
		point, err := runner.BenchPoint(devs, cfg, pr)
		if err != nil {
			return err
		}
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := point.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trajectory point written to %s\n", jsonPath)
	}
	return nil
}
