package topology

import (
	"testing"
)

func TestBuildAllTopologies(t *testing.T) {
	for _, d := range All() {
		n := Build(d, DefaultBuildParams())
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if len(n.Qubits) != d.Qubits {
			t.Errorf("%s: %d qubits, want %d", d.Name, len(n.Qubits), d.Qubits)
		}
		if len(n.Resonators) != len(d.Edges) {
			t.Errorf("%s: %d resonators, want %d", d.Name, len(n.Resonators), len(d.Edges))
		}
		for _, r := range n.Resonators {
			if len(r.Blocks) < 11 || len(r.Blocks) > 12 {
				t.Errorf("%s: resonator %d has %d blocks, want 11..12", d.Name, r.ID, len(r.Blocks))
			}
		}
	}
}

func TestBuildQubitsInsideSubstrate(t *testing.T) {
	for _, d := range All() {
		n := Build(d, DefaultBuildParams())
		border := n.Border()
		for _, q := range n.Qubits {
			if !border.ContainsRect(q.Rect()) {
				t.Errorf("%s: qubit %d at %v outside substrate %gx%g",
					d.Name, q.ID, q.Pos, n.W, n.H)
			}
		}
	}
}

func TestBuildUtilization(t *testing.T) {
	p := DefaultBuildParams()
	for _, d := range All() {
		n := Build(d, p)
		var area float64
		for _, q := range n.Qubits {
			area += q.Rect().Area()
		}
		area += float64(len(n.Blocks)) * n.BlockSize * n.BlockSize
		util := area / (n.W * n.H)
		if util > p.Utilization+0.05 || util < p.Utilization-0.15 {
			t.Errorf("%s: utilization %.3f far from target %.2f", d.Name, util, p.Utilization)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(Falcon27(), DefaultBuildParams())
	b := Build(Falcon27(), DefaultBuildParams())
	for i := range a.Qubits {
		if a.Qubits[i].Pos != b.Qubits[i].Pos || a.Qubits[i].Freq != b.Qubits[i].Freq {
			t.Fatal("Build is not deterministic")
		}
	}
	for i := range a.Blocks {
		if a.Blocks[i].Pos != b.Blocks[i].Pos {
			t.Fatal("Build block seeding is not deterministic")
		}
	}
}

func TestBuildBlocksBetweenEndpoints(t *testing.T) {
	n := Build(Grid25(), DefaultBuildParams())
	for _, r := range n.Resonators {
		p1 := n.Qubits[r.Q1].Pos
		p2 := n.Qubits[r.Q2].Pos
		span := p1.Dist(p2) + 2
		for _, id := range r.Blocks {
			b := n.Blocks[id]
			if b.Pos.Dist(p1)+b.Pos.Dist(p2) > span+1 {
				t.Errorf("block %d of resonator %d far off the endpoint chord", id, r.ID)
			}
		}
	}
}
