package service

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file is the cluster-mode HTTP glue: ring-routed request
// forwarding between replicas. The ring and failure detector live in
// internal/cluster; here they are applied to the canonical request keys
// (the same hashes the store is keyed by), so the key a replica owns is
// exactly the key whose layout it computes and spills.
//
// Routing policy, in order:
//
//  1. Hop guard: a request carrying cluster.ForwardHeader is served
//     locally, whatever the ring says — one hop maximum, loops
//     impossible even when replicas disagree about liveness.
//  2. Owner: if the ring routes the key here, compute locally.
//  3. Store short-circuit: a non-owned key already present in the local
//     store (e.g. replicas share one disk tier) is served locally —
//     disk hits never cross the network.
//  4. Forward: proxy to the first live owner whose circuit breaker is
//     not open, byte-for-byte, each attempt bounded by the cluster's
//     ForwardTimeout (and the request's remaining deadline budget,
//     forwarded as a header). A failed attempt retries once against
//     the next ring owner after a jittered backoff.
//  5. Fallback: if every usable owner fails (or the retry budget is
//     spent), compute locally rather than fail — availability beats
//     sharding discipline.

// forwardAttempts caps how many peers one request may try before
// falling back locally: the first live owner plus one retry. Combined
// with the per-attempt timeout, a request's worst-case detour is
// 2*ForwardTimeout + one backoff — never an unbounded walk of the ring.
const forwardAttempts = 2

// serveRouted implements the routing policy for one request identified
// by key. cached peeks for a locally available result; local serves the
// request on this replica; forwarded (optional) is invoked with the
// owner's address after a successful forward — the read-repair hook.
func serveRouted(e *Engine, w http.ResponseWriter, r *http.Request, key string, cached func() bool, local http.HandlerFunc, forwarded func(owner string)) {
	cl := e.cluster
	if r.Header.Get(cluster.ForwardHeader) != "" {
		cl.CountOwned()
		cl.CountForwardReceived()
		local(w, r)
		return
	}
	attempts := 0
	for _, owner := range cl.Ring().Owners(key, cl.Replication()) {
		if owner == cl.Self() {
			cl.CountOwned()
			local(w, r)
			return
		}
		if cl.PeerState(owner) == cluster.StateDead {
			continue
		}
		if cached() {
			cl.CountShortCircuit()
			local(w, r)
			return
		}
		// An open breaker skips the peer without paying a timeout; the
		// next owner (or local fallback) takes the request instead.
		if !cl.AllowForward(owner) {
			continue
		}
		if attempts > 0 {
			cl.CountForwardRetry()
			if !backoffJittered(r.Context(), cl.RetryBackoff()) {
				break // client gone or deadline blown mid-backoff
			}
		}
		attempts++
		if forwardRequest(cl, owner, w, r) {
			if forwarded != nil {
				forwarded(owner)
			}
			return
		}
		if attempts >= forwardAttempts || r.Context().Err() != nil {
			break
		}
	}
	cl.CountFallback()
	local(w, r)
}

// backoffJittered sleeps for base/2 + rand(base) — full-jitter spread
// around the configured backoff — honoring ctx. Returns false when ctx
// expired first.
func backoffJittered(ctx context.Context, base time.Duration) bool {
	if base <= 0 {
		return ctx.Err() == nil
	}
	d := base/2 + time.Duration(rand.Int63n(int64(base)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// forwardRequest proxies r to owner, relaying status, headers, and body
// verbatim (the owner's response IS the response — byte-identity across
// replicas falls out). Returns false on transport failure, feeding the
// failure detector so repeatedly unreachable owners go suspect → dead
// and later requests re-route without paying the dial timeout.
//
// The hop is traced: a cluster.forward span covers the round trip, and
// cluster.TraceHeader carries this trace's ID across so the owner
// records its half under the same ID. For ?debug=trace responses the
// remote span tree comes back inline and is grafted under the hop span,
// and the body's trace fields are rewritten to the stitched local view —
// the client sees one tree spanning both replicas.
func forwardRequest(cl *cluster.Cluster, owner string, w http.ResponseWriter, r *http.Request) bool {
	u := *r.URL
	u.Scheme = "http"
	u.Host = owner
	fw := obs.SpanFrom(r.Context()).Child("cluster.forward")
	fw.Attr("peer", owner)
	// Each attempt is bounded by ForwardTimeout on top of whatever
	// remains of the caller's deadline, so a wedged owner costs one
	// bounded attempt and the retry/fallback still has budget left.
	ctx := r.Context()
	if t := cl.ForwardTimeout(); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	fail := func(err error) bool {
		cl.CountForwardError()
		cl.MarkForwardFailure(owner, err)
		fw.Attr("error", err.Error())
		fw.End()
		return false
	}
	if err := cl.Faults().Fire(ctx, faultinject.SitePeerForward); err != nil {
		return fail(err)
	}
	// GET bodies are empty; sending NoBody keeps the request trivially
	// replayable on the retry attempt. Routed POSTs (the delta endpoint)
	// buffer their body up front and install GetBody, so every attempt
	// replays the full body.
	body := r.Body
	if r.Method == http.MethodGet {
		body = http.NoBody
	} else if r.GetBody != nil {
		if b, berr := r.GetBody(); berr == nil {
			body = b
		}
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u.String(), body)
	if err != nil {
		cl.CountForwardError()
		fw.Attr("error", err.Error())
		fw.End()
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(cluster.ForwardHeader, cl.Self())
	// Propagate the remaining deadline budget as a duration, never an
	// absolute time — replica clock skew must not inflate (or deflate)
	// the budget. The receiving front-end re-applies it.
	if dl, ok := r.Context().Deadline(); ok {
		req.Header.Set(DeadlineHeader, time.Until(dl).String())
	}
	if ref := traceRef(fw, "cluster.forward"); ref != "" {
		req.Header.Set(cluster.TraceHeader, ref)
	}
	resp, err := cl.Client().Do(req)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	cl.MarkForwardSuccess(owner)
	cl.CountForwarded()
	if r.URL.Query().Get("debug") == "trace" && resp.StatusCode == http.StatusOK &&
		strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		body, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			// Nothing was written yet; let the caller fall back to
			// local compute.
			cl.CountForwardError()
			fw.Attr("error", rerr.Error())
			fw.End()
			return false
		}
		body = stitchForwardedTrace(obs.SpanFrom(r.Context()), fw, body)
		for k, vs := range resp.Header {
			if k == "Content-Length" { // body was rewritten
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return true
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	fw.End()
	return true
}

// stitchForwardedTrace grafts the remote span tree embedded in a
// forwarded ?debug=trace response body under the hop span fw, ends the
// hop, and rewrites the body's trace fields to this replica's (now
// stitched) tree. Any parse failure returns the body untouched — the
// remote half is still a valid trace on its own.
func stitchForwardedTrace(sp, fw *obs.Span, body []byte) []byte {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		fw.End()
		return body
	}
	if raw, ok := m["trace"]; ok {
		var node obs.SpanNode
		if err := json.Unmarshal(raw, &node); err == nil {
			fw.Graft(&node)
		}
	}
	fw.End()
	tr := sp.Trace()
	if tr == nil {
		return body
	}
	snap := tr.Snapshot()
	if b, err := json.Marshal(snap.Root); err == nil {
		m["trace"] = b
	}
	if b, err := json.Marshal(snap.ID); err == nil {
		m["trace_id"] = b
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return body
	}
	return out
}

// routedLayoutHandler wraps the local /v1/layout handler with ring
// routing. Unparseable requests skip routing — the local handler owns
// the 400. A successful forward triggers asynchronous read-repair:
// the owner just computed (or already held) the envelope, so pulling
// it here turns the next request for the same key into a local
// short-circuit instead of another network hop.
func routedLayoutHandler(e *Engine, local http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, err := layoutRequestFromQuery(r)
		if err != nil {
			local(w, r)
			return
		}
		key := layoutKey(req)
		serveRouted(e, w, r, key, func() bool {
			_, ok := e.layStore.Peek(key)
			return ok
		}, local, func(owner string) {
			go e.readRepair(owner, key)
		})
	}
}

// routedFidelityHandler routes /v1/fidelity by the underlying layout's
// key, so a layout's fidelity evaluations land on the replica that
// computed (and fidelity-cached) it. The short-circuit peeks the local
// fidelity cache — the layout being on shared disk does not make the
// fidelity evaluation free.
func routedFidelityHandler(e *Engine, local http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lreq, err := layoutRequestFromQuery(r)
		if err != nil {
			local(w, r)
			return
		}
		bench := r.URL.Query().Get("bench")
		key := layoutKey(lreq)
		serveRouted(e, w, r, key, func() bool {
			_, ok := e.fidCache.Get(fidelityKey(FidelityRequest{LayoutRequest: lreq, Benchmark: bench}))
			return ok
		}, local, nil)
	}
}

// handleClusterRoute serves GET /clusterz/route: the ring's verdict for
// one request, for debugging and for the cluster smoke test to find a
// key's owner from outside.
func handleClusterRoute(e *Engine, w http.ResponseWriter, r *http.Request) {
	req, err := layoutRequestFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := layoutKey(req)
	addr, self := e.cluster.Route(key)
	writeJSON(w, http.StatusOK, map[string]any{
		"key":    key,
		"owners": e.cluster.Ring().Owners(key, e.cluster.Replication()),
		"route":  addr,
		"self":   self,
	})
}
