package freq

import "testing"

func TestColorGraphProper(t *testing.T) {
	// Path, cycle, and star graphs all must be properly colored.
	cases := []struct {
		n     int
		edges [][2]int
	}{
		{4, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}},
		{5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}},
		{4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}}, // K4
	}
	for i, c := range cases {
		colors := colorGraph(c.n, c.edges)
		for _, e := range c.edges {
			if colors[e[0]] == colors[e[1]] {
				t.Errorf("case %d: edge %v endpoints share color", i, e)
			}
		}
	}
}

func TestColorGraphEmpty(t *testing.T) {
	colors := colorGraph(3, nil)
	if len(colors) != 3 {
		t.Fatalf("len = %d", len(colors))
	}
	for _, c := range colors {
		if c != 0 {
			t.Error("isolated vertices should all get color 0")
		}
	}
}
