// Package dplace is qGDP-DP, the detailed placement engine of §III-E
// (Algorithm 2): it scans the legalized layout for problem resonators —
// non-unified (|C_e| > 1), hotspot-involved (H_e > 0), or crossing
// another resonator's route — builds a focused window around each,
// extracts the window's resonators, re-places them with maze routing,
// and keeps the new positions only when the window's cluster count,
// hotspot weight, and crossing count have not regressed (with at least
// one strict improvement).
//
// The engine maintains one routing grid for the whole refinement run and
// mutates it incrementally — rip-ups and placements apply block/unblock
// deltas through a per-cell occupancy count, and the per-candidate
// restriction to the problem window is a maze.Grid window instead of a
// mass-block of every outside cell. Resonator routes and their bounding
// boxes are cached and invalidated only for the resonators a window
// touches, and the window objective uses the group-restricted metric
// kernels, so a candidate costs work proportional to its window rather
// than to the whole layout. The accepted layouts are identical to the
// rebuild-per-candidate reference placer.
//
// When the parallelism budget grants more than one lane, candidate
// windows are refined in waves: the longest prefix of the candidate
// order whose footprints are pairwise disjoint is evaluated
// concurrently — each lane owns a full refiner state (grid, occupancy,
// route cache, netlist view) — and the accepted moves are merged in
// canonical candidate order. A window's footprint over-approximates
// everything its evaluation reads or writes, so wave members cannot
// observe each other and the refined layout is bit-identical to the
// serial scan for every lane count (see the determinism suite).
package dplace

import (
	"context"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/kernstats"
	"repro/internal/maze"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/scratch"
)

// Params tunes the detailed placer.
type Params struct {
	// Metrics are the hotspot thresholds shared with the evaluation.
	Metrics metrics.Params
	// WindowMargin expands the problem window (cells).
	WindowMargin int
	// MaxAdjacent caps how many neighbor resonators join a window.
	MaxAdjacent int
	// MaxPasses bounds the scan-and-fix iterations.
	MaxPasses int
	// Par is the parallelism budget wave refinement draws lanes from;
	// nil uses the process-wide default. Excluded from request hashing:
	// lane count never changes the produced layout.
	Par *parallel.Budget `json:"-"`
	// Lanes caps the lanes requested from the budget; 0 means
	// GOMAXPROCS. Tests use it to force multi-lane waves on small
	// machines.
	Lanes int `json:"-"`
	// Obs is the span refinement passes and waves hang under (stamped
	// by core.Legalize from the request trace); nil disables tracing.
	// Excluded from hashing like Par/Lanes.
	Obs *obs.Span `json:"-"`
	// Cancel, when non-nil and closed, aborts refinement at the next
	// wave boundary: Refine returns context.Canceled and the netlist
	// is left mid-refinement (the caller must discard it). A blown
	// request deadline therefore costs at most one wave of work.
	// Stamped per call like Par; excluded from request hashing.
	Cancel <-chan struct{} `json:"-"`
}

// DefaultParams mirrors the evaluation setup.
func DefaultParams() Params {
	return Params{
		Metrics:      metrics.DefaultParams(),
		WindowMargin: 2,
		MaxAdjacent:  3,
		MaxPasses:    3,
	}
}

// Result reports what the detailed placer did.
type Result struct {
	// Considered counts candidate windows examined.
	Considered int
	// Accepted counts windows whose re-placement was kept.
	Accepted int
	// Passes is the number of full scans performed.
	Passes int
}

// Refine runs Algorithm 2 on a legalized netlist, mutating wire-block
// positions in place. Qubits never move. The refined layout is
// independent of how many lanes the parallelism budget grants.
func Refine(n *netlist.Netlist, p Params) (Result, error) {
	return refine(n, p, nil)
}

// RefineRegion is Refine restricted to the dirty regions of a delta
// repair: only resonators whose cached route bounding box touches a
// region are admitted as candidate windows. Window groups may still
// pull in adjacent resonators from outside the regions (a window must
// see its true neighborhood to reject regressions), so the repair
// remains exact within each window — the restriction only skips scans
// of provably-untouched parts of the layout.
func RefineRegion(n *netlist.Netlist, p Params, regions []geom.Rect) (Result, error) {
	return refine(n, p, regions)
}

func refine(n *netlist.Netlist, p Params, regions []geom.Rect) (Result, error) {
	start := time.Now()
	defer func() { kernstats.DPRefine.Observe(time.Since(start)) }()

	r := newRefiner(n, p)
	r.regions = regions

	want := p.Lanes
	if want <= 0 {
		want = runtime.GOMAXPROCS(0)
	}
	grant := p.Par.Acquire(want)
	defer grant.Release()
	var pr *parRefiner
	if grant.Lanes() > 1 {
		pr = newParRefiner(r, grant)
		defer pr.release()
	}

	var res Result
	for pass := 0; pass < p.MaxPasses; pass++ {
		if cancelled(p.Cancel) {
			return res, context.Canceled
		}
		res.Passes = pass + 1
		ps := p.Obs.Child("dplace.pass")
		cands := r.candidates()
		res.Considered += len(cands)
		accepted := 0
		if pr == nil {
			kernstats.DPSerialWindows.Add(int64(len(cands)))
			ws := ps.Child("dplace.wave")
			ws.AttrInt("windows", int64(len(cands)))
			ws.AttrInt("lanes", 1)
			for _, e := range cands {
				// The serial scan treats each window as its own wave,
				// so cancellation aborts within one window's work.
				if cancelled(p.Cancel) {
					ws.End()
					ps.End()
					return res, context.Canceled
				}
				if r.refineWindow(e) {
					accepted++
				}
			}
			ws.End()
		} else {
			var err error
			accepted, err = pr.refinePass(cands, ps)
			if err != nil {
				ps.End()
				return res, err
			}
		}
		ps.AttrInt("windows", int64(len(cands)))
		ps.AttrInt("accepted", int64(accepted))
		ps.End()
		res.Accepted += accepted
		if accepted == 0 {
			break
		}
	}
	return res, nil
}

// cancelled reports whether the cancel channel is closed (nil: never).
func cancelled(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// refiner carries the persistent state of one Refine run: the
// incrementally-mutated routing grid, the per-cell block occupancy, and
// the route cache.
type refiner struct {
	n *netlist.Netlist
	p Params

	g      *maze.Grid
	w, h   int
	static []bool  // qubit-footprint cells, never unblocked
	occ    []int32 // wire blocks per cell; >0 means blocked

	routes []geom.Polyline // cached n.Route(e); nil = recompute
	boxes  []geom.Rect     // bounding boxes of the cached routes

	// regions, when non-nil, restricts the candidate scan to resonators
	// whose route box touches one of the rects (the delta fast path).
	// Set only on the master refiner, after construction: wave lanes
	// never scan candidates, and reset() clears it so a pooled lane
	// refiner cannot leak a stale filter into a later run.
	regions []geom.Rect

	inGroup []bool

	// Per-window scratch.
	savedID  []int
	savedPos []geom.Pt
	placed   []maze.Cell
	srcs     []maze.Cell
	dsts     []maze.Cell
	crossing []int
	nears    []near
}

func newRefiner(n *netlist.Netlist, p Params) *refiner {
	r := &refiner{}
	r.reset(n, p)
	return r
}

// reset (re)initializes the refiner against a netlist, reusing every
// buffer — the pooled lane refiners of the wave pipeline rebuild their
// state with it once per Refine call.
func (r *refiner) reset(n *netlist.Netlist, p Params) {
	w := int(math.Round(n.W))
	h := int(math.Round(n.H))
	r.n, r.p, r.w, r.h = n, p, w, h
	r.regions = nil
	if r.g == nil {
		r.g = maze.NewGrid(w, h)
	} else {
		r.g.Reset(w, h)
	}
	r.static = scratch.Grow(r.static, w*h)
	r.occ = scratch.Grow(r.occ, w*h)
	r.routes = scratch.Grow(r.routes, len(n.Resonators))
	r.boxes = scratch.Grow(r.boxes, len(n.Resonators))
	r.inGroup = scratch.Grow(r.inGroup, len(n.Resonators))
	r.crossing = scratch.Grow(r.crossing, len(n.Resonators))
	// Qubit macros are permanent obstacles.
	for qi := range n.Qubits {
		rect := n.Qubits[qi].Rect()
		x0 := int(math.Floor(rect.MinX() + geom.Eps))
		y0 := int(math.Floor(rect.MinY() + geom.Eps))
		x1 := int(math.Ceil(rect.MaxX() - geom.Eps))
		y1 := int(math.Ceil(rect.MaxY() - geom.Eps))
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				c := maze.Cell{X: x, Y: y}
				if r.g.InBounds(c) {
					r.static[y*w+x] = true
					r.g.Block(c)
				}
			}
		}
	}
	// Every wire block occupies its cell.
	for i := range n.Blocks {
		r.occupy(cellOf(n.Blocks[i].Pos))
	}
}

// occupy adds one block to a cell, blocking it on the 0 -> 1 edge.
// Out-of-bounds cells are ignored (they are implicitly blocked).
func (r *refiner) occupy(c maze.Cell) {
	if !r.g.InBounds(c) {
		return
	}
	i := c.Y*r.w + c.X
	r.occ[i]++
	if r.occ[i] == 1 {
		r.g.Block(c)
	}
}

// vacate removes one block from a cell, unblocking it on the 1 -> 0 edge
// unless a qubit footprint pins it.
func (r *refiner) vacate(c maze.Cell) {
	if !r.g.InBounds(c) {
		return
	}
	i := c.Y*r.w + c.X
	r.occ[i]--
	if r.occ[i] == 0 && !r.static[i] {
		r.g.Unblock(c)
	}
}

// route returns resonator e's cached routing polyline, recomputing it
// after an invalidation.
func (r *refiner) route(e int) geom.Polyline {
	if r.routes[e] == nil {
		r.routes[e] = r.n.Route(e)
		r.boxes[e] = r.routes[e].BBox()
	}
	return r.routes[e]
}

func (r *refiner) invalidateRoutes(group []int) {
	for _, e := range group {
		r.routes[e] = nil
	}
}

// candidates returns the resonators violating a quality objective:
// E_c (non-unified), E_h (hotspots), and crossing participants, ordered
// worst-first (cluster count, then crossings, then hotspot weight, then
// ID).
func (r *refiner) candidates() []int {
	n := r.n
	hot := metrics.ResonatorHotspotAll(n, r.p.Metrics)
	crossing := r.crossing
	for e := range crossing {
		crossing[e] = 0
	}
	for i := range n.Resonators {
		r.route(i)
	}
	for i := range n.Resonators {
		for j := i + 1; j < len(n.Resonators); j++ {
			if !r.boxes[i].Touches(r.boxes[j]) {
				continue
			}
			if c := geom.CrossCount(r.routes[i], r.routes[j]); c > 0 {
				crossing[i] += c
				crossing[j] += c
			}
		}
	}
	type cand struct {
		e        int
		clusters int
		hot      float64
		crosses  int
	}
	var cs []cand
	for e := range n.Resonators {
		if !r.inRegions(e) {
			continue
		}
		cl := n.ClusterCount(e)
		if cl > 1 || hot[e] > 0 || crossing[e] > 0 {
			cs = append(cs, cand{e, cl, hot[e], crossing[e]})
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].clusters != cs[j].clusters {
			return cs[i].clusters > cs[j].clusters
		}
		if cs[i].crosses != cs[j].crosses {
			return cs[i].crosses > cs[j].crosses
		}
		if cs[i].hot != cs[j].hot {
			return cs[i].hot > cs[j].hot
		}
		return cs[i].e < cs[j].e
	})
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.e
	}
	return out
}

// inRegions reports whether resonator e passes the region filter (a
// nil filter admits everything). Callers ensure e's route is cached.
func (r *refiner) inRegions(e int) bool {
	if r.regions == nil {
		return true
	}
	for _, reg := range r.regions {
		if reg.Touches(r.boxes[e]) {
			return true
		}
	}
	return false
}

// windowObjective is the Algorithm-2 acceptance triple, restricted to
// the window's resonators.
type windowObjective struct {
	clusters  int
	hotspots  float64
	crossings int
}

func (a windowObjective) betterThan(b windowObjective) bool {
	const eps = 1e-9
	if a.clusters > b.clusters || a.hotspots > b.hotspots+eps || a.crossings > b.crossings {
		return false
	}
	return a.clusters < b.clusters || a.hotspots < b.hotspots-eps || a.crossings < b.crossings
}

// refineWindow attempts one window rip-up/re-place; reports acceptance.
func (r *refiner) refineWindow(e int) bool {
	group := r.windowGroup(e)
	return r.refineWindowIn(group, r.windowRect(group), nil)
}

// refineWindowIn runs the rip-up/re-place of the window whose group and
// rect were computed against the refiner's current state. With
// placedOut == nil an accepted move stays applied (the serial path).
// With placedOut non-nil the evaluation is speculative: the accepted
// cells (group order, each resonator's blocks in order) are copied out
// and the refiner is restored to its pre-call state bit for bit, so a
// wave lane can evaluate concurrently and the move can be committed
// later in canonical candidate order via applyMove.
func (r *refiner) refineWindowIn(group []int, win geom.Rect, placedOut *[]maze.Cell) bool {
	n := r.n
	for _, ge := range group {
		r.inGroup[ge] = true
	}
	defer func() {
		for _, ge := range group {
			r.inGroup[ge] = false
		}
	}()

	before := r.measure(group)

	// Snapshot for revert, and rip up the group's cells.
	r.savedID = r.savedID[:0]
	r.savedPos = r.savedPos[:0]
	for _, ge := range group {
		for _, id := range n.Resonators[ge].Blocks {
			r.savedID = append(r.savedID, id)
			r.savedPos = append(r.savedPos, n.Blocks[id].Pos)
			r.vacate(cellOf(n.Blocks[id].Pos))
		}
	}

	// Restrict routing to the window.
	x0 := int(math.Floor(win.MinX() + geom.Eps))
	y0 := int(math.Floor(win.MinY() + geom.Eps))
	x1 := int(math.Ceil(win.MaxX() - geom.Eps))
	y1 := int(math.Ceil(win.MaxY() - geom.Eps))
	r.g.SetWindow(x0, y0, x1, y1)

	// Re-place each group resonator: the problem resonator first, then
	// neighbors in group order.
	r.placed = r.placed[:0]
	ok := true
	for _, ge := range group {
		if !r.routeResonator(ge) {
			ok = false
			break
		}
	}
	r.g.ClearWindow()
	r.invalidateRoutes(group)

	if !ok {
		r.revert()
		return false
	}
	after := r.measure(group)
	if !after.betterThan(before) {
		r.revert()
		r.invalidateRoutes(group)
		return false
	}
	if placedOut != nil {
		*placedOut = append((*placedOut)[:0], r.placed...)
		r.revert()
		r.invalidateRoutes(group)
	}
	return true
}

// applyMove commits one accepted window's cells to the refiner:
// occupancy deltas, block positions, and route invalidation. The wave
// pipeline applies every accepted move to the master and to each lane
// state, in canonical candidate order, which is exactly the state the
// serial scan would have produced.
func (r *refiner) applyMove(group []int, cells []maze.Cell) {
	k := 0
	for _, ge := range group {
		for _, id := range r.n.Resonators[ge].Blocks {
			c := cells[k]
			k++
			r.vacate(cellOf(r.n.Blocks[id].Pos))
			r.n.Blocks[id].Pos = geom.Pt{X: float64(c.X) + 0.5, Y: float64(c.Y) + 0.5}
			r.occupy(c)
		}
	}
	r.invalidateRoutes(group)
}

// revert restores the snapshot positions and the matching occupancy.
func (r *refiner) revert() {
	for _, c := range r.placed {
		r.vacate(c)
	}
	for i, id := range r.savedID {
		r.n.Blocks[id].Pos = r.savedPos[i]
		r.occupy(cellOf(r.savedPos[i]))
	}
}

// near is one candidate adjacent resonator during group selection.
type near struct {
	e int
	d float64
}

// windowGroup returns e plus up to MaxAdjacent resonators whose blocks
// lie nearest to e's blocks (the "adjacent resonators" of Fig. 7).
func (r *refiner) windowGroup(e int) []int {
	return r.appendWindowGroup(nil, e)
}

// appendWindowGroup appends the window group of e to dst and returns
// it — the arena-building form the wave scheduler uses.
func (r *refiner) appendWindowGroup(dst []int, e int) []int {
	n := r.n
	nears := r.nears[:0]
	for o := range n.Resonators {
		if o == e {
			continue
		}
		d := resonatorDistance(n, e, o)
		if d <= float64(r.p.WindowMargin)+1 {
			nears = append(nears, near{o, d})
		}
	}
	r.nears = nears
	sort.Slice(nears, func(i, j int) bool {
		if nears[i].d != nears[j].d {
			return nears[i].d < nears[j].d
		}
		return nears[i].e < nears[j].e
	})
	base := len(dst)
	dst = append(dst, e)
	for _, nr := range nears {
		if len(dst)-base > r.p.MaxAdjacent {
			break
		}
		dst = append(dst, nr.e)
	}
	return dst
}

// resonatorDistance is the minimum block-to-block center distance.
func resonatorDistance(n *netlist.Netlist, a, b int) float64 {
	best := math.Inf(1)
	for _, ia := range n.Resonators[a].Blocks {
		pa := n.Blocks[ia].Pos
		for _, ib := range n.Resonators[b].Blocks {
			if d := pa.Dist(n.Blocks[ib].Pos); d < best {
				best = d
			}
		}
	}
	return best
}

// windowRect is the bounding box of the group's blocks and endpoint
// qubits, expanded by the margin and clipped to the substrate.
func (r *refiner) windowRect(group []int) geom.Rect {
	n := r.n
	first := true
	var box geom.Rect
	add := func(rc geom.Rect) {
		if first {
			box = rc
			first = false
		} else {
			box = box.Union(rc)
		}
	}
	for _, e := range group {
		res := &n.Resonators[e]
		add(n.Qubits[res.Q1].Rect())
		add(n.Qubits[res.Q2].Rect())
		for _, id := range res.Blocks {
			add(n.BlockRect(id))
		}
	}
	box = box.Expand(float64(r.p.WindowMargin))
	// Clip to substrate.
	minX := math.Max(0, box.MinX())
	maxX := math.Min(n.W, box.MaxX())
	minY := math.Max(0, box.MinY())
	maxY := math.Min(n.H, box.MaxY())
	return geom.NewRect((minX+maxX)/2, (minY+maxY)/2, maxX-minX, maxY-minY)
}

// measure computes the acceptance objective for the group: cluster
// counts over the group, plus the group-restricted hotspot weight and
// route-crossing count. The values match the full-layout metrics
// filtered to the group, term for term.
func (r *refiner) measure(group []int) windowObjective {
	n := r.n
	var o windowObjective
	for _, e := range group {
		o.clusters += n.ClusterCount(e)
	}
	o.hotspots = metrics.GroupHotspotWeight(n, r.p.Metrics, r.inGroup)
	for i := range n.Resonators {
		r.route(i)
	}
	for i := range n.Resonators {
		for j := i + 1; j < len(n.Resonators); j++ {
			if !r.inGroup[i] && !r.inGroup[j] {
				continue
			}
			if !r.boxes[i].Touches(r.boxes[j]) {
				continue
			}
			o.crossings += geom.CrossCount(r.routes[i], r.routes[j])
		}
	}
	return o
}

// routeResonator maze-routes resonator e between its endpoint qubits and
// assigns its wire blocks along the (thickened) path, committing each
// cell to the occupancy grid.
func (r *refiner) routeResonator(e int) bool {
	n := r.n
	res := &n.Resonators[e]
	r.srcs = r.appendQubitAdjacent(r.srcs[:0], res.Q1)
	r.dsts = r.appendQubitAdjacent(r.dsts[:0], res.Q2)
	path := r.g.Route(r.srcs, r.dsts)
	if path == nil {
		return false
	}
	cells := r.g.Thicken(path, len(res.Blocks))
	if cells == nil {
		return false
	}
	for i, id := range res.Blocks {
		c := cells[i]
		n.Blocks[id].Pos = geom.Pt{X: float64(c.X) + 0.5, Y: float64(c.Y) + 0.5}
		r.occupy(c)
		r.placed = append(r.placed, c)
	}
	return true
}

func (r *refiner) appendQubitAdjacent(dst []maze.Cell, q int) []maze.Cell {
	rect := r.n.Qubits[q].Rect()
	x0 := int(math.Floor(rect.MinX() + geom.Eps))
	y0 := int(math.Floor(rect.MinY() + geom.Eps))
	x1 := int(math.Ceil(rect.MaxX() - geom.Eps))
	y1 := int(math.Ceil(rect.MaxY() - geom.Eps))
	return r.g.AppendAdjacent(dst, x0, y0, x1, y1)
}

func cellOf(p geom.Pt) maze.Cell {
	return maze.Cell{X: int(math.Floor(p.X)), Y: int(math.Floor(p.Y))}
}
