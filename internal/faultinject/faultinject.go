// Package faultinject is a deterministic, seed-driven fault-injection
// harness for the serving tier. An Injector holds a schedule of rules,
// each bound to a named site — a code location that calls Fire before
// doing real work (taking a worker slot, writing a layout spill,
// forwarding to a peer, probing a heartbeat target). When a rule
// matches, Fire injects the configured fault: added latency, an
// injected error, or a drop (block until the caller's context gives
// up, simulating a blackholed peer).
//
// Determinism: whether the N-th call at a site faults is a pure
// function of (seed, site, N), independent of timing and concurrency —
// two runs of the same workload against the same spec inject the same
// faults. That is what lets the chaos smoke assert byte-identical
// answers under injected failure.
//
// Inertness: a nil *Injector is fully functional and free — Fire on a
// nil receiver is a single comparison and return. Production builds
// pass nil unless -fault-spec is set, so the zero-alloc kernel guards
// and cached-path latency are untouched.
//
// Spec grammar (the -fault-spec flag), clauses joined by ';':
//
//	<site>=<action>[:<duration>][,p=<prob>][,times=<n>][,after=<n>]
//
//	worker.slot=latency:50ms            delay every slot acquisition 50ms
//	peer.forward=error,p=0.5            fail half of all forward attempts
//	peer.forward=drop,times=3           blackhole the first 3 forwards
//	store.write=error,after=10          spills fail from the 11th on
//
// Actions: "latency" (requires a duration), "error", "drop" (optional
// duration cap; otherwise bounded by the caller's context, with a 30s
// backstop so a context that cannot expire never leaks a goroutine
// forever).
package faultinject

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The well-known sites wired through the serving stack. Sites are
// free-form strings — these constants just keep call sites and specs
// in agreement.
const (
	// SiteWorkerSlot fires when a request tries to take an engine
	// worker slot (before queueing).
	SiteWorkerSlot = "worker.slot"
	// SiteStoreWrite fires before a computed layout is written to the
	// layout store; an injected error skips the write (a failed spill).
	SiteStoreWrite = "store.write"
	// SitePeerForward fires before a cluster forward attempt (the
	// synchronous request proxy).
	SitePeerForward = "peer.forward"
	// SiteJobsForward fires before a ring-partitioned job group is
	// submitted to its owning replica.
	SiteJobsForward = "jobs.forward"
	// SiteHeartbeatProbe fires before a heartbeat probe request.
	SiteHeartbeatProbe = "heartbeat.probe"
	// SiteStoreRead fires before a layout-store read on the serving
	// path; an injected error is served as a miss (the layout is
	// recomputed — the rehydration path under a failing disk).
	SiteStoreRead = "store.read"
	// SitePeerReplicate fires before a replication push to a co-owner
	// (the asynchronous /v1/replicate stream); a failed push stays on
	// the retry queue.
	SitePeerReplicate = "peer.replicate"
)

// Action is what a matched rule does to the call.
type Action int

const (
	// Latency sleeps for the rule's duration (or until ctx expires)
	// and lets the call proceed.
	Latency Action = iota
	// Error fails the call immediately with an *InjectedError.
	Error
	// Drop blocks until the caller's context expires (or the rule's
	// duration, when set; 30s backstop otherwise), then fails the call.
	Drop
)

func (a Action) String() string {
	switch a {
	case Latency:
		return "latency"
	case Error:
		return "error"
	case Drop:
		return "drop"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// InjectedError marks a failure as injected, so tests and logs can
// tell synthetic faults from real ones.
type InjectedError struct {
	Site   string
	Action Action
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s", e.Action, e.Site)
}

// dropBackstop bounds a Drop whose context never expires, so a
// blackholed heartbeat probe cannot leak its goroutine forever.
const dropBackstop = 30 * time.Second

// Rule is one clause of a fault schedule.
type Rule struct {
	Site     string
	Action   Action
	Duration time.Duration // latency amount, or drop cap (0: ctx-bounded)
	// P is the per-call activation probability in [0, 1] (default 1).
	// The decision for call N is a pure function of (seed, site, N).
	P float64
	// Times caps total activations (0: unlimited).
	Times int64
	// After skips the first After calls at the site.
	After int64

	calls atomic.Int64 // calls seen at this rule's site
	fired atomic.Int64 // activations so far
	seed  uint64
}

// Injector is an immutable-after-Parse fault schedule. All methods are
// safe for concurrent use; all methods on a nil receiver are inert.
type Injector struct {
	rules map[string][]*Rule
	spec  string
}

// Parse builds an Injector from a spec string (see the package
// comment for the grammar). An empty spec returns nil — the inert
// injector.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{rules: map[string][]*Rule{}, spec: spec}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: %w", clause, err)
		}
		r.seed = mix(uint64(seed) ^ hashSite(r.Site))
		in.rules[r.Site] = append(in.rules[r.Site], r)
	}
	if len(in.rules) == 0 {
		return nil, nil
	}
	return in, nil
}

// MustParse is Parse for hard-coded test specs.
func MustParse(spec string, seed int64) *Injector {
	in, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return in
}

func parseClause(clause string) (*Rule, error) {
	site, rest, ok := strings.Cut(clause, "=")
	site = strings.TrimSpace(site)
	if !ok || site == "" || rest == "" {
		return nil, fmt.Errorf("want <site>=<action>[...]")
	}
	parts := strings.Split(rest, ",")
	r := &Rule{Site: site, P: 1}
	action := strings.TrimSpace(parts[0])
	if name, arg, ok := strings.Cut(action, ":"); ok {
		d, err := time.ParseDuration(strings.TrimSpace(arg))
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad duration %q", arg)
		}
		r.Duration = d
		action = name
	}
	switch strings.TrimSpace(action) {
	case "latency":
		if r.Duration <= 0 {
			return nil, fmt.Errorf("latency needs a duration (latency:50ms)")
		}
		r.Action = Latency
	case "error":
		r.Action = Error
	case "drop":
		r.Action = Drop
	default:
		return nil, fmt.Errorf("unknown action %q (want latency, error, or drop)", action)
	}
	for _, mod := range parts[1:] {
		k, v, ok := strings.Cut(strings.TrimSpace(mod), "=")
		if !ok {
			return nil, fmt.Errorf("bad modifier %q", mod)
		}
		switch k {
		case "p":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("bad probability %q", v)
			}
			r.P = p
		case "times":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad times %q", v)
			}
			r.Times = n
		case "after":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad after %q", v)
			}
			r.After = n
		default:
			return nil, fmt.Errorf("unknown modifier %q", k)
		}
	}
	return r, nil
}

// Spec returns the spec the injector was parsed from ("" for nil).
func (in *Injector) Spec() string {
	if in == nil {
		return ""
	}
	return in.spec
}

// Fire evaluates the schedule at site for one call. It returns nil
// when no rule activates; otherwise it applies the fault: Latency
// sleeps then returns nil, Error and Drop return an *InjectedError
// (Drop after blocking). A nil receiver always returns nil.
func (in *Injector) Fire(ctx context.Context, site string) error {
	if in == nil {
		return nil
	}
	rules := in.rules[site]
	if len(rules) == 0 {
		return nil
	}
	for _, r := range rules {
		n := r.calls.Add(1) - 1
		if n < r.After {
			continue
		}
		if r.P < 1 && !decide(r.seed, n, r.P) {
			continue
		}
		if r.Times > 0 && r.fired.Add(1) > r.Times {
			continue
		}
		switch r.Action {
		case Latency:
			select {
			case <-time.After(r.Duration):
			case <-ctx.Done():
			}
		case Error:
			return &InjectedError{Site: site, Action: Error}
		case Drop:
			cap := r.Duration
			if cap <= 0 {
				cap = dropBackstop
			}
			select {
			case <-ctx.Done():
			case <-time.After(cap):
			}
			return &InjectedError{Site: site, Action: Drop}
		}
	}
	return nil
}

// decide reports whether call n activates under probability p — a pure
// function of (seed, n, p), so concurrent interleavings cannot change
// which calls fault.
func decide(seed uint64, n int64, p float64) bool {
	h := mix(seed + uint64(n)*0x9E3779B97F4A7C15)
	return float64(h>>11)/(1<<53) < p
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hashSite is FNV-1a over the site name, mixing distinct sites into
// distinct rule seeds.
func hashSite(site string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 0x100000001B3
	}
	return h
}
