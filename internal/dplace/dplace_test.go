package dplace

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/gplace"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/qlegal"
	"repro/internal/reslegal"
	"repro/internal/topology"
)

func legalized(t *testing.T, dev *topology.Device) *netlist.Netlist {
	t.Helper()
	n := topology.Build(dev, topology.DefaultBuildParams())
	gplace.Place(n, gplace.DefaultParams())
	if _, err := qlegal.Legalize(n, qlegal.QuantumParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := reslegal.Legalize(n); err != nil {
		t.Fatal(err)
	}
	return n
}

func assertLegal(t *testing.T, name string, n *netlist.Netlist) {
	t.Helper()
	border := n.Border()
	occupied := map[[2]int]int{}
	for i := range n.Blocks {
		r := n.BlockRect(i)
		if !border.ContainsRect(r) {
			t.Errorf("%s: block %d outside border", name, i)
		}
		key := [2]int{int(n.Blocks[i].Pos.X), int(n.Blocks[i].Pos.Y)}
		if prev, dup := occupied[key]; dup {
			t.Errorf("%s: blocks %d and %d share bin %v", name, prev, i, key)
		}
		occupied[key] = i
		for _, q := range n.Qubits {
			if r.Overlaps(q.Rect()) {
				t.Errorf("%s: block %d overlaps qubit %d", name, i, q.ID)
			}
		}
	}
}

// testDevices trims the topology sweep under -short.
func testDevices() []*topology.Device {
	if testing.Short() {
		return topology.Small()
	}
	return topology.All()
}

// Table III shape: qGDP-DP must never regress any metric relative to
// qGDP-LG, on every topology.
func TestRefineNeverRegresses(t *testing.T) {
	p := DefaultParams()
	for _, dev := range testDevices() {
		n := legalized(t, dev)
		before := metrics.Analyze(n, p.Metrics)
		if _, err := Refine(n, p); err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		after := metrics.Analyze(n, p.Metrics)
		assertLegal(t, dev.Name, n)

		if after.Unified < before.Unified {
			t.Errorf("%s: unified regressed %d -> %d", dev.Name, before.Unified, after.Unified)
		}
		if after.TotalClusters > before.TotalClusters {
			t.Errorf("%s: clusters regressed %d -> %d", dev.Name, before.TotalClusters, after.TotalClusters)
		}
	}
}

// DP must strictly improve at least one topology's hotspot or crossing
// picture overall (the Table III deltas).
func TestRefineImprovesSomewhere(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full topology sweep to assert an improvement exists")
	}
	p := DefaultParams()
	improved := false
	for _, dev := range topology.All() {
		n := legalized(t, dev)
		before := metrics.Analyze(n, p.Metrics)
		res, err := Refine(n, p)
		if err != nil {
			t.Fatal(err)
		}
		after := metrics.Analyze(n, p.Metrics)
		if after.Ph < before.Ph-1e-9 || after.Crossings < before.Crossings ||
			after.TotalClusters < before.TotalClusters {
			improved = true
		}
		_ = res
	}
	if !improved {
		t.Error("detailed placement improved nothing on any topology")
	}
}

func TestRefineDoesNotMoveQubits(t *testing.T) {
	n := legalized(t, topology.Grid25())
	var before []float64
	for _, q := range n.Qubits {
		before = append(before, q.Pos.X, q.Pos.Y)
	}
	if _, err := Refine(n, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, q := range n.Qubits {
		if q.Pos.X != before[i] || q.Pos.Y != before[i+1] {
			t.Fatalf("qubit %d moved", q.ID)
		}
		i += 2
	}
}

func TestRefineDeterministic(t *testing.T) {
	run := func() []float64 {
		n := legalized(t, topology.Falcon27())
		if _, err := Refine(n, DefaultParams()); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, b := range n.Blocks {
			out = append(out, b.Pos.X, b.Pos.Y)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("detailed placement not deterministic")
		}
	}
}

func TestRefineOnCleanLayoutIsNoop(t *testing.T) {
	// A layout with no candidates (no hotspots, unified, no crossings)
	// must be untouched. Build a tiny ideal instance.
	n := &netlist.Netlist{Name: "clean", W: 20, H: 20, BlockSize: 1}
	n.Qubits = []netlist.Qubit{
		{ID: 0, Pos: pt(3.5, 9.5), Size: 3, Freq: 5.0},
		{ID: 1, Pos: pt(16.5, 9.5), Size: 3, Freq: 5.07},
	}
	r := netlist.Resonator{ID: 0, Q1: 0, Q2: 1, Freq: 7.0, Length: 5}
	for i := 0; i < 5; i++ {
		n.Blocks = append(n.Blocks, netlist.WireBlock{
			ID: i, Edge: 0, Index: i, Pos: pt(5.5+float64(i)*2, 9.5),
		})
		r.Blocks = append(r.Blocks, i)
	}
	// Make them contiguous for a single cluster.
	for i := range n.Blocks {
		n.Blocks[i].Pos = pt(5.5+float64(i), 9.5)
	}
	n.Resonators = []netlist.Resonator{r}
	res, err := Refine(n, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Considered != 0 {
		t.Errorf("clean layout produced %d candidates", res.Considered)
	}
}

func pt(x, y float64) geom.Pt { return geom.Pt{X: x, Y: y} }
