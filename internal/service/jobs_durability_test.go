package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestJobManifestSurvivesRestart: a finished job's manifest makes its
// ID pollable on a fresh engine pointed at the same jobs directory —
// no more 404 after restart.
func TestJobManifestSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e1, _ := jobStubEngine(Options{Workers: 2, JobsDir: dir})

	cfg := core.DefaultConfig()
	cfg.GP.Seed = 11
	view, err := e1.Jobs().Submit([]LayoutRequest{
		layoutReq("Grid", core.QGDPLG),
		{Topology: "Falcon", Strategy: core.QGDPLG, Config: cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJobDone(t, func() (JobView, bool) { return e1.Jobs().Get(view.ID) })
	if final.Done != 2 || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, c2 := jobStubEngine(Options{Workers: 2, JobsDir: dir})
	defer e2.Close()
	got, ok := e2.Jobs().Get(view.ID)
	if !ok {
		t.Fatal("restarted engine forgot the job")
	}
	if got.Status != JobDone || got.Done != 2 || len(got.Items) != 2 {
		t.Fatalf("restarted view = %+v", got)
	}
	for i, it := range got.Items {
		if it.Status != JobItemDone || it.QubitMs <= 0 {
			t.Errorf("item %d lost results: %+v", i, it)
		}
	}
	// A finished job resumes nothing.
	if n := e2.Jobs().Resume(); n != 0 {
		t.Errorf("Resume rescheduled %d items of a finished job", n)
	}
	if got := c2.legalizes.Load(); got != 0 {
		t.Errorf("restart recomputed %d finished items", got)
	}
}

// TestJobResumeUnfinished: an interrupted job (manifest with pending
// items — what a crash mid-batch leaves) is reported immediately after
// restart and completes after Resume.
func TestJobResumeUnfinished(t *testing.T) {
	dir := t.TempDir()

	cfg := core.DefaultConfig()
	cfg.GP.Seed = 5
	manifest := jobManifest{
		Version: manifestVersion,
		ID:      "jdeadbeef00000001",
		Created: time.Now().Add(-time.Minute),
		Requests: []LayoutRequest{
			{Topology: "Grid", Strategy: core.QGDPLG, Config: core.DefaultConfig()},
			{Topology: "Falcon", Strategy: core.QGDPLG, Config: cfg},
		},
		Items: []JobItem{
			{Topology: "Grid", Strategy: core.QGDPLG, Status: JobItemDone, QubitMs: 1, ResonatorMs: 2},
			// A crash persists in-flight items as pending (manifests
			// normalize running), but tolerate a raw "running" too.
			{Topology: "Falcon", Strategy: core.QGDPLG, Seed: 5, Status: JobItemRunning},
		},
	}
	data, err := json.Marshal(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName(manifest.ID)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt manifest and a stray temp file must be swept, not fatal.
	os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{nope"), 0o644)
	os.WriteFile(filepath.Join(dir, manifestTmpPrefix+"crashed"), []byte("partial"), 0o644)

	e, c := jobStubEngine(Options{Workers: 2, JobsDir: dir})
	defer e.Close()

	// Reported before any resume: still running, one item pending.
	got, ok := e.Jobs().Get(manifest.ID)
	if !ok {
		t.Fatal("unfinished job not reported after restart")
	}
	if got.Status != JobRunning || got.Done != 1 {
		t.Fatalf("pre-resume view = %+v", got)
	}
	if got.Items[1].Status != JobItemPending {
		t.Fatalf("interrupted item state = %s, want pending", got.Items[1].Status)
	}

	if n := e.Jobs().Resume(); n != 1 {
		t.Fatalf("Resume rescheduled %d items, want 1", n)
	}
	final := waitJobDone(t, func() (JobView, bool) { return e.Jobs().Get(manifest.ID) })
	if final.Done != 2 || final.Failed != 0 {
		t.Fatalf("final = %+v (items %+v)", final, final.Items)
	}
	// Only the interrupted item recomputed; the finished one kept its
	// persisted result.
	if got := c.legalizes.Load(); got != 1 {
		t.Errorf("resume recomputed %d items, want 1", got)
	}
	if final.Items[0].QubitMs != 1 {
		t.Errorf("finished item's persisted timing lost: %+v", final.Items[0])
	}
	if s := e.Jobs().Stats(); s.Resumed != 1 {
		t.Errorf("stats resumed = %d, want 1", s.Resumed)
	}

	// Double Resume never double-schedules.
	if n := e.Jobs().Resume(); n != 0 {
		t.Errorf("second Resume rescheduled %d items", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "broken.json")); !os.IsNotExist(err) {
		t.Error("corrupt manifest not swept")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestTmpPrefix+"crashed")); !os.IsNotExist(err) {
		t.Error("stray temp manifest not swept")
	}
}

// TestJobManifestUpdatesPerItem: the on-disk manifest tracks item
// completion as it happens, so a crash at any point loses at most the
// in-flight items.
func TestJobManifestUpdatesPerItem(t *testing.T) {
	dir := t.TempDir()
	e, _ := jobStubEngine(Options{Workers: 1, JobsDir: dir})
	defer e.Close()

	view, err := e.Jobs().Submit([]LayoutRequest{layoutReq("Grid", core.QGDPLG)})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, func() (JobView, bool) { return e.Jobs().Get(view.ID) })

	data, err := os.ReadFile(filepath.Join(dir, manifestName(view.ID)))
	if err != nil {
		t.Fatalf("no manifest on disk: %v", err)
	}
	var m jobManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != manifestVersion || len(m.Items) != 1 || m.Items[0].Status != JobItemDone {
		t.Errorf("manifest = %+v", m)
	}
	if m.Requests[0].Topology != "Grid" {
		t.Errorf("manifest requests = %+v", m.Requests)
	}
}

// TestJobSpecFullConfigValidated: the full-config job spec path (used
// by cluster sub-jobs but open to any client) enforces the same
// invariants as the scalar knobs.
func TestJobSpecFullConfigValidated(t *testing.T) {
	e, _ := jobStubEngine(Options{Workers: 1})
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	bad := `{"requests":[{"topology":"Grid","config":{"Mappings":-1}}]}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative-mappings config accepted: status %d", resp.StatusCode)
	}

	cfg := core.DefaultConfig()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := `{"requests":[{"topology":"Grid","config":` + string(data) + `}]}`
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("valid full config rejected: status %d", resp.StatusCode)
	}
}
