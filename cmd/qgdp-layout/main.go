// Command qgdp-layout renders an ASCII picture of a legalized layout:
// qubit macros as 'Q', wire blocks as per-resonator letters, free cells
// as dots. Useful for eyeballing what each legalization strategy does to
// the same global placement.
//
// Usage:
//
//	qgdp-layout -topology Grid -strategy qGDP-LG
//	qgdp-layout -topology Falcon -strategy Tetris
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/layoutio"
	"repro/internal/netlist"
	"repro/internal/topology"
)

func main() {
	topoName := flag.String("topology", "Grid", "device topology: Grid, Xtree, Falcon, Eagle, Aspen-11, Aspen-M")
	strategy := flag.String("strategy", "qGDP-DP", "legalization strategy (or GP for the raw global placement)")
	svgPath := flag.String("svg", "", "also write an SVG rendering to this path")
	jsonPath := flag.String("json", "", "also write the layout as JSON to this path")
	flag.Parse()

	if err := run(*topoName, *strategy, *svgPath, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "qgdp-layout:", err)
		os.Exit(1)
	}
}

func run(topoName, strategy, svgPath, jsonPath string) error {
	dev, err := topology.ByName(topoName)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	gp := core.Prepare(dev, cfg)

	var n *netlist.Netlist
	if strings.EqualFold(strategy, "GP") {
		n = gp
	} else {
		lay, err := core.Legalize(gp, core.Strategy(strategy), cfg)
		if err != nil {
			return err
		}
		n = lay.Netlist
	}

	fmt.Printf("%s / %s — %gx%g cells, %d qubits, %d resonators, %d wire blocks\n\n",
		dev.Name, strategy, n.W, n.H, len(n.Qubits), len(n.Resonators), len(n.Blocks))
	fmt.Print(render(n))

	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := layoutio.WriteSVG(f, n, layoutio.SVGOptions{Routes: true}); err != nil {
			return err
		}
		fmt.Printf("\nSVG written to %s\n", svgPath)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := layoutio.WriteJSON(f, n); err != nil {
			return err
		}
		fmt.Printf("layout JSON written to %s\n", jsonPath)
	}
	return nil
}

// render draws the cell grid top row last (y grows upward).
func render(n *netlist.Netlist) string {
	w, h := int(n.W), int(n.H)
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", w))
	}
	glyphs := "abcdefghijklmnopqrstuvwxyz0123456789"
	for _, b := range n.Blocks {
		x, y := int(b.Pos.X), int(b.Pos.Y)
		if x >= 0 && x < w && y >= 0 && y < h {
			grid[y][x] = glyphs[b.Edge%len(glyphs)]
		}
	}
	for _, q := range n.Qubits {
		r := q.Rect()
		for y := int(r.MinY()); y < int(r.MaxY()+0.5) && y < h; y++ {
			for x := int(r.MinX()); x < int(r.MaxX()+0.5) && x < w; x++ {
				if x >= 0 && y >= 0 {
					grid[y][x] = 'Q'
				}
			}
		}
	}
	var sb strings.Builder
	for y := h - 1; y >= 0; y-- {
		sb.Write(grid[y])
		sb.WriteByte('\n')
	}
	return sb.String()
}
