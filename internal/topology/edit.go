package topology

import (
	"fmt"
	"sort"
)

// The edit operations a delta request may apply to a base device. They
// model the live-hardware drift the incremental engine repairs around:
// calibration dropouts (a qubit or coupler leaves service), frequency
// retunes, and substrate resizes.
const (
	// EditDisableQubit removes one qubit and every coupler incident to
	// it. A structural edit: the device is renumbered.
	EditDisableQubit = "disable_qubit"
	// EditDisableCoupler removes one coupling edge (its resonator).
	EditDisableCoupler = "disable_coupler"
	// EditRetune changes one qubit's operating frequency. Non-structural:
	// the coupling graph is untouched.
	EditRetune = "retune"
	// EditResize changes the substrate dimensions. Non-structural for the
	// graph, but it invalidates every placement globally.
	EditResize = "resize"
)

// Edit is one entry of a delta request's edit list. Which fields are
// meaningful depends on Op: disable_qubit and retune use Qubit (retune
// also Freq); disable_coupler uses Q1/Q2; resize uses W/H. All indices
// refer to the BASE device's numbering — renumbering caused by earlier
// structural edits in the same list never shifts later entries.
type Edit struct {
	Op    string  `json:"op"`
	Qubit int     `json:"qubit,omitempty"`
	Q1    int     `json:"q1,omitempty"`
	Q2    int     `json:"q2,omitempty"`
	Freq  float64 `json:"freq,omitempty"`
	W     float64 `json:"w,omitempty"`
	H     float64 `json:"h,omitempty"`
}

// editRank orders ops for the canonical edit list: structural removals
// first, then retunes, then the (at most one) resize.
func editRank(op string) int {
	switch op {
	case EditDisableQubit:
		return 0
	case EditDisableCoupler:
		return 1
	case EditRetune:
		return 2
	default:
		return 3
	}
}

// Canonicalize validates edits against base and returns the canonical
// form: fields irrelevant to each op zeroed, coupler endpoints ordered
// Q1 < Q2, and the list sorted deterministically (op rank, then
// indices). Two requests that mean the same repair therefore hash to
// the same delta cache key regardless of how the client ordered or
// spelled its list. Rejected: unknown ops, out-of-range indices,
// unknown couplers, duplicate or conflicting entries (two retunes of
// one qubit, a retune of a disabled qubit, a coupler edit incident to
// a disabled qubit, more than one resize), non-positive frequencies or
// dimensions, and the empty list.
func Canonicalize(base *Device, edits []Edit) ([]Edit, error) {
	if len(edits) == 0 {
		return nil, fmt.Errorf("edit list: empty")
	}
	edgeSet := make(map[[2]int]bool, len(base.Edges))
	for _, e := range base.Edges {
		k := e
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		edgeSet[k] = true
	}
	out := make([]Edit, 0, len(edits))
	disabledQ := map[int]bool{}
	retuned := map[int]bool{}
	disabledC := map[[2]int]bool{}
	resized := false
	for i, e := range edits {
		switch e.Op {
		case EditDisableQubit:
			if e.Qubit < 0 || e.Qubit >= base.Qubits {
				return nil, fmt.Errorf("edit %d: qubit %d out of range [0,%d)", i, e.Qubit, base.Qubits)
			}
			if disabledQ[e.Qubit] {
				return nil, fmt.Errorf("edit %d: qubit %d disabled twice", i, e.Qubit)
			}
			disabledQ[e.Qubit] = true
			out = append(out, Edit{Op: EditDisableQubit, Qubit: e.Qubit})
		case EditDisableCoupler:
			q1, q2 := e.Q1, e.Q2
			if q1 > q2 {
				q1, q2 = q2, q1
			}
			if q1 < 0 || q2 >= base.Qubits || q1 == q2 {
				return nil, fmt.Errorf("edit %d: coupler (%d,%d) out of range", i, e.Q1, e.Q2)
			}
			if !edgeSet[[2]int{q1, q2}] {
				return nil, fmt.Errorf("edit %d: no coupler (%d,%d) in %s", i, q1, q2, base.Name)
			}
			if disabledC[[2]int{q1, q2}] {
				return nil, fmt.Errorf("edit %d: coupler (%d,%d) disabled twice", i, q1, q2)
			}
			disabledC[[2]int{q1, q2}] = true
			out = append(out, Edit{Op: EditDisableCoupler, Q1: q1, Q2: q2})
		case EditRetune:
			if e.Qubit < 0 || e.Qubit >= base.Qubits {
				return nil, fmt.Errorf("edit %d: qubit %d out of range [0,%d)", i, e.Qubit, base.Qubits)
			}
			if e.Freq <= 0 {
				return nil, fmt.Errorf("edit %d: retune frequency %g must be positive", i, e.Freq)
			}
			if retuned[e.Qubit] {
				return nil, fmt.Errorf("edit %d: qubit %d retuned twice", i, e.Qubit)
			}
			retuned[e.Qubit] = true
			out = append(out, Edit{Op: EditRetune, Qubit: e.Qubit, Freq: e.Freq})
		case EditResize:
			if e.W <= 0 || e.H <= 0 {
				return nil, fmt.Errorf("edit %d: resize %gx%g must be positive", i, e.W, e.H)
			}
			if resized {
				return nil, fmt.Errorf("edit %d: more than one resize", i)
			}
			resized = true
			out = append(out, Edit{Op: EditResize, W: e.W, H: e.H})
		default:
			return nil, fmt.Errorf("edit %d: unknown op %q", i, e.Op)
		}
	}
	// Cross-entry conflicts: edits referencing a qubit removed by the
	// same list are contradictions, not no-ops — reject loudly so a
	// client bug cannot silently hash to a different repair than it
	// believes it requested.
	for _, e := range out {
		switch e.Op {
		case EditDisableCoupler:
			if disabledQ[e.Q1] || disabledQ[e.Q2] {
				return nil, fmt.Errorf("coupler (%d,%d) edit conflicts with disabling its qubit", e.Q1, e.Q2)
			}
		case EditRetune:
			if disabledQ[e.Qubit] {
				return nil, fmt.Errorf("retune of qubit %d conflicts with disabling it", e.Qubit)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if ra, rb := editRank(a.Op), editRank(b.Op); ra != rb {
			return ra < rb
		}
		if a.Qubit != b.Qubit {
			return a.Qubit < b.Qubit
		}
		if a.Q1 != b.Q1 {
			return a.Q1 < b.Q1
		}
		return a.Q2 < b.Q2
	})
	return out, nil
}

// ApplyEdits returns the device base becomes after the structural edits
// in the (canonical) list — disabled qubits and couplers removed, the
// remainder renumbered densely — plus the old→new qubit index map (-1
// for removed qubits). Retune and resize entries are graph-neutral and
// ignored here; callers apply them at the netlist/config level. The
// edited device must remain a valid device (≥ 2 qubits, connected): a
// dropout that splits the coupling graph is a different device, not a
// repairable drift, and is rejected.
func ApplyEdits(base *Device, edits []Edit) (*Device, []int, error) {
	removedQ := map[int]bool{}
	removedC := map[[2]int]bool{}
	for _, e := range edits {
		switch e.Op {
		case EditDisableQubit:
			removedQ[e.Qubit] = true
		case EditDisableCoupler:
			removedC[[2]int{e.Q1, e.Q2}] = true
		}
	}
	qmap := make([]int, base.Qubits)
	next := 0
	for q := 0; q < base.Qubits; q++ {
		if removedQ[q] {
			qmap[q] = -1
			continue
		}
		qmap[q] = next
		next++
	}
	if next < 2 {
		return nil, nil, fmt.Errorf("edited %s: %d qubits remain, need at least 2", base.Name, next)
	}
	out := &Device{Name: base.Name, Qubits: next}
	for q := 0; q < base.Qubits; q++ {
		if qmap[q] >= 0 {
			out.Coords = append(out.Coords, base.Coords[q])
		}
	}
	for _, e := range base.Edges {
		k := e
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if removedC[k] || qmap[e[0]] < 0 || qmap[e[1]] < 0 {
			continue
		}
		out.Edges = append(out.Edges, [2]int{qmap[e[0]], qmap[e[1]]})
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("edited device invalid: %w", err)
	}
	return out, qmap, nil
}
