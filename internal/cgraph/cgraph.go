// Package cgraph builds the horizontal and vertical constraint graphs of
// macro legalization (§III-C): every pair of qubit macros is assigned a
// separation direction — horizontal or vertical — based on its relative
// GP position, producing two DAGs of difference constraints that the
// lp1d solver then satisfies with minimum displacement.
package cgraph

import (
	"repro/internal/geom"
	"repro/internal/lp1d"
)

// Graphs holds the two constraint DAGs. Arc separations are in integer
// grid cells.
type Graphs struct {
	H, V []lp1d.Arc
}

// Build assigns a direction to every macro pair and emits the
// corresponding constraint arcs. The direction with the larger
// normalized slack at the GP positions is chosen, so macros that are
// already mostly side-by-side separate horizontally and stacked macros
// separate vertically — the assignment that needs the least movement.
//
// The optional extra function adds pair-specific spacing on top of the
// uniform requirement — the quantum legalizer uses it to hold
// frequency-close (hotspot-prone) qubit pairs further apart. For the
// transitive pruning below to remain sound, extra(i,j) must never exceed
// the smallest macro size; callers clamp accordingly.
//
// Transitively implied arcs are pruned: with additive separations, the
// arc i→j is redundant whenever some k lies between i and j with both
// (i,k) and (k,j) assigned the same direction. Pruning keeps the LP
// small without changing its feasible region.
func Build(pos []geom.Pt, sizes []int64, spacing int64, extra func(i, j int) int64) Graphs {
	if extra == nil {
		extra = func(int, int) int64 { return 0 }
	}
	n := len(pos)
	// dir[i][j]: 0 = horizontal, 1 = vertical (i < j).
	type pairKey struct{ a, b int }
	horiz := make(map[pairKey]bool, n*n/2)

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := abs(pos[i].X - pos[j].X)
			dy := abs(pos[i].Y - pos[j].Y)
			needX := float64(sizes[i]+sizes[j])/2 + float64(spacing+extra(i, j))
			needY := needX
			// Normalized slack comparison; ties go horizontal.
			horiz[pairKey{i, j}] = dx/needX >= dy/needY
		}
	}

	isH := func(a, b int) bool {
		if a > b {
			a, b = b, a
		}
		return horiz[pairKey{a, b}]
	}

	var g Graphs
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sep := (sizes[i]+sizes[j])/2 + spacing + extra(i, j)
			if isH(i, j) {
				lo, hi := i, j
				if pos[lo].X > pos[hi].X || (pos[lo].X == pos[hi].X && lo > hi) {
					lo, hi = hi, lo
				}
				if !prunedH(pos, lo, hi, isH) {
					g.H = append(g.H, lp1d.Arc{From: lo, To: hi, Sep: sep})
				}
			} else {
				lo, hi := i, j
				if pos[lo].Y > pos[hi].Y || (pos[lo].Y == pos[hi].Y && lo > hi) {
					lo, hi = hi, lo
				}
				if !prunedV(pos, lo, hi, isH) {
					g.V = append(g.V, lp1d.Arc{From: lo, To: hi, Sep: sep})
				}
			}
		}
	}
	return g
}

// prunedH reports whether the horizontal arc lo→hi is implied through an
// intermediate macro k with lo→k→hi all horizontal.
func prunedH(pos []geom.Pt, lo, hi int, isH func(int, int) bool) bool {
	for k := range pos {
		if k == lo || k == hi {
			continue
		}
		if pos[k].X > pos[lo].X && pos[k].X < pos[hi].X && isH(lo, k) && isH(k, hi) {
			return true
		}
	}
	return false
}

func prunedV(pos []geom.Pt, lo, hi int, isH func(int, int) bool) bool {
	for k := range pos {
		if k == lo || k == hi {
			continue
		}
		if pos[k].Y > pos[lo].Y && pos[k].Y < pos[hi].Y && !isH(lo, k) && !isH(k, hi) {
			return true
		}
	}
	return false
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
