// Package service is the layout-as-a-service layer: a concurrent
// placement engine wrapping internal/core behind caching, request
// coalescing, and a bounded worker pool, plus the HTTP API served by
// cmd/qgdp-serve.
//
// Every expensive pipeline stage is deterministic in its inputs —
// global placement in (topology, Build, GP params), legalization in
// (GP solution, strategy, DP params), fidelity averaging in (layout,
// benchmark, fidelity params, mapping count) — so each stage is cached
// by a canonical hash of those inputs: GP solutions and fidelity values
// in engine-local LRUs, finished layouts in a pluggable store.Store
// (optionally a disk-backed tier that survives restarts; see package
// store). Concurrent identical requests collapse into one computation
// via singleflight, and all computations run inside a bounded worker
// pool with context cancellation between stages.
//
// On top of the synchronous API sits the async job subsystem (Jobs):
// batches of layout requests submitted via POST /v1/jobs run through
// the same worker pool and parallelism budget, and their results land
// in the store so later synchronous requests hit.
//
// The experiments package drives its topology × strategy fan-out
// through the same engine, so the paper's Fig. 8/9 and Table II/III
// reproduction shares GP solutions and layouts across experiments and
// runs them in parallel.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kernstats"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/store"
	"repro/internal/topology"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent pipeline computations (default
	// GOMAXPROCS).
	Workers int
	// CacheSize is the per-cache entry capacity (GP solutions, layouts,
	// and fidelity values each get their own LRU; default 256).
	CacheSize int
	// ParallelBudget caps the total compute lanes the engine's
	// in-flight jobs may use for their internally parallel kernels (GP
	// repulsion shards, DP refinement waves, crossing-pair shards). 0
	// shares the process-wide default budget (GOMAXPROCS lanes).
	// Whatever the budget grants, every job's output is bit-identical
	// to its serial computation.
	ParallelBudget int
	// Store holds legalized layouts, keyed by the canonical
	// (topology, strategy, seed, config) hash. nil means an ephemeral
	// in-memory LRU of CacheSize entries; pass a store.Tiered over
	// store.OpenDisk to survive restarts. The engine owns the store and
	// closes it in Close. Singleflight dedup stays engine-side — the
	// store only remembers results, it never computes.
	Store store.Store
	// Cluster, when non-nil, shards the request keyspace across
	// replicas: the HTTP layer forwards requests this replica does not
	// own to the ring owner (store-aware — shared-store hits never cross
	// the network), and job batches partition their items by owner. nil
	// means single-process serving. The engine owns the cluster and
	// closes it in Close.
	Cluster *cluster.Cluster
	// JobsDir, when non-empty, persists one manifest per job under it
	// (atomic writes) so a restarted replica reports — and on
	// Jobs().Resume() re-runs — unfinished batches instead of returning
	// 404. qgdp-serve points it at <cache-dir>/jobs.
	JobsDir string
	// TraceRing caps the in-memory ring of recent request traces served
	// on GET /tracez (default obs.DefaultRingSize).
	TraceRing int
	// SlowRequestThreshold, when positive, logs one structured JSON
	// line (with the request's three slowest spans) for every traced
	// request slower than it.
	SlowRequestThreshold time.Duration
	// SlowLogWriter receives the slow-request lines (default stderr).
	SlowLogWriter io.Writer
	// MaxQueue bounds how many admitted requests may wait for a worker
	// slot; a full queue sheds with 503 + Retry-After. 0 means
	// unbounded (the pre-admission behavior). Only synchronous requests
	// that passed the QoS front-end count — background job items never
	// queue here.
	MaxQueue int
	// MaxQueueWait sheds (503) when the estimated wait for a worker
	// slot — live mean compute latency times queue depth over workers —
	// exceeds it. 0 disables the estimate check.
	MaxQueueWait time.Duration
	// QuotaRPS is the per-tenant steady-state request rate (token
	// bucket, refilled continuously). 0 means no per-tenant quota.
	QuotaRPS float64
	// QuotaBurst is the token-bucket capacity (default max(1,
	// 2*QuotaRPS)).
	QuotaBurst int
	// DefaultDeadline bounds requests that carry no DeadlineHeader.
	// 0 means no implicit deadline.
	DefaultDeadline time.Duration
	// ReplicationRetryInterval is how often the replication queue
	// retries undelivered envelopes (failed pushes, hinted handoff for
	// down peers). Default 1s. Cluster mode only.
	ReplicationRetryInterval time.Duration
	// AntiEntropyInterval is the period of the anti-entropy sweep: this
	// replica offers the keys it holds to their current ring owners and
	// re-pushes whatever they are missing. 0 disables the sweep (pushes
	// and hinted handoff still run). Cluster mode only.
	AntiEntropyInterval time.Duration
	// Faults, when non-nil, injects the configured fault schedule at
	// the engine's instrumented sites (worker-slot acquisition, store
	// reads/writes, replication pushes). nil — the default — keeps
	// every site a no-op nil-check.
	Faults *faultinject.Injector
	// SLOs are the service objectives tracked over rolling 5m/1h
	// windows: request-latency thresholds and Eq. 7 fidelity floors
	// (see obs.ParseSLO for the grammar). Empty disables SLO tracking.
	SLOs []obs.SLOSpec
	// SLOBurnAlert is the fast-window burn-rate threshold above which
	// /healthz reports degraded (default obs.DefaultBurnAlert = 14.4).
	SLOBurnAlert float64
	// Profiler, when non-nil, is the continuous profiling ring indexed
	// by GET /profilez. The engine does not own it — qgdp-serve closes
	// it on shutdown.
	Profiler *obs.Profiler
}

// Engine is a concurrent layout/fidelity computation service over the
// core pipeline. All methods are safe for concurrent use.
type Engine struct {
	sem     chan struct{}
	budget  *parallel.Budget
	cluster *cluster.Cluster
	workers int

	// adm is the QoS front-end (nil when unconfigured); faults the
	// fault-injection schedule (nil in production); defaultDeadline the
	// implicit per-request budget.
	adm             *admission
	faults          *faultinject.Injector
	defaultDeadline time.Duration

	// layStore holds finished layouts (possibly persistently); the GP
	// and fidelity caches are engine-local LRUs — GP solutions are an
	// intermediate too large to spill usefully, fidelity values too
	// cheap to bother.
	layStore                       store.Store
	gpCache, fidCache              *store.LRU
	gpFlight, layFlight, fidFlight flightGroup

	jobs *Jobs

	// rep streams computed layouts to the other ring owners (push
	// replication + hinted handoff + anti-entropy); nil outside cluster
	// mode.
	rep *replicator

	// rec retains recent request traces for /tracez; slowThresh/slowW
	// drive the structured slow-request log.
	rec        *obs.Recorder
	slowThresh time.Duration
	slowMu     sync.Mutex
	slowW      io.Writer

	// acct attributes requests, cache hits, compute, queue wait, sheds
	// and deadline blows to tenants (/tenantz, qgdp_tenant_*); slo
	// scores latency and fidelity against the configured objectives
	// (nil when none are configured); profiler is the continuous
	// profiling ring behind /profilez (nil when off).
	acct      *obs.Accounting
	slo       *obs.SLOTracker
	burnAlert float64
	profiler  *obs.Profiler

	stats stats

	// Stage hooks, overridable in tests to observe or block mid-job.
	prepareFn  func(*topology.Device, core.Config) *netlist.Netlist
	legalizeFn func(context.Context, *netlist.Netlist, core.Strategy, core.Config) (*core.Layout, error)
	fidelityFn func(context.Context, *netlist.Netlist, string, core.Config) (float64, error)
}

// New builds an engine with the given options.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = 256
	}
	var budget *parallel.Budget // nil: kernels use parallel.Default()
	if opts.ParallelBudget > 0 {
		budget = parallel.NewBudget(opts.ParallelBudget)
	}
	if opts.Store == nil {
		opts.Store = store.NewMemory(opts.CacheSize)
	}
	if opts.SlowLogWriter == nil {
		opts.SlowLogWriter = os.Stderr
	}
	e := &Engine{
		sem:             make(chan struct{}, opts.Workers),
		budget:          budget,
		cluster:         opts.Cluster,
		workers:         opts.Workers,
		adm:             newAdmission(opts.MaxQueue, opts.MaxQueueWait, opts.QuotaRPS, opts.QuotaBurst),
		faults:          opts.Faults,
		defaultDeadline: opts.DefaultDeadline,
		layStore:        opts.Store,
		rec:             obs.NewRecorder(opts.TraceRing),
		slowThresh:      opts.SlowRequestThreshold,
		slowW:           opts.SlowLogWriter,
		acct:            obs.NewAccounting(),
		slo:             obs.NewSLOTracker(opts.SLOs),
		burnAlert:       opts.SLOBurnAlert,
		profiler:        opts.Profiler,
		gpCache:         store.NewLRU(opts.CacheSize, nil),
		fidCache:        store.NewLRU(opts.CacheSize, nil),
		prepareFn: func(dev *topology.Device, cfg core.Config) *netlist.Netlist {
			return core.Prepare(dev, cfg)
		},
		legalizeFn: func(_ context.Context, gp *netlist.Netlist, s core.Strategy, cfg core.Config) (*core.Layout, error) {
			return core.Legalize(gp, s, cfg)
		},
		fidelityFn: func(_ context.Context, n *netlist.Netlist, bench string, cfg core.Config) (float64, error) {
			return core.AverageFidelity(n, bench, cfg)
		},
	}
	if e.burnAlert <= 0 {
		e.burnAlert = obs.DefaultBurnAlert
	}
	e.jobs = newJobs(e, opts.JobsDir)
	if e.cluster != nil {
		// Heartbeat digests carry this replica's lane utilization so
		// peers see load, not just liveness.
		e.cluster.SetLaneUtil(e.laneUtil)
		// Digests also carry a compact health summary (readiness, request
		// count, shed rate, max fast-window SLO burn) so every replica
		// holds a bounded-staleness health row for the whole fleet — the
		// /fleetz fallback for unreachable members.
		e.cluster.SetHealthSummary(func() cluster.HealthSummary {
			_, ok := e.Health()
			var shedRate float64
			if e.adm != nil {
				shedRate = e.adm.shedRate()
			}
			return cluster.HealthSummary{
				Healthy:     ok,
				Requests:    e.stats.requests.Load(),
				ShedRate:    shedRate,
				MaxFastBurn: e.slo.MaxFastBurn(),
				UnixMs:      time.Now().UnixMilli(),
			}
		})
		e.rep = newReplicator(e, opts.ReplicationRetryInterval, opts.AntiEntropyInterval)
	}
	return e
}

// Accounting returns the per-tenant accounting table.
func (e *Engine) Accounting() *obs.Accounting { return e.acct }

// SLO returns the SLO tracker (nil when no objectives are configured).
func (e *Engine) SLO() *obs.SLOTracker { return e.slo }

// Profiler returns the continuous profiling ring (nil when off).
func (e *Engine) Profiler() *obs.Profiler { return e.profiler }

// tenantAcct resolves the request's tenant stats row (nil — a no-op
// sink — when the request carries no tenant). Allocation-free for
// known tenants, so it can sit on the cache-hit fast path.
func (e *Engine) tenantAcct(ctx context.Context) *obs.TenantStats {
	return e.acct.Tenant(tenantFrom(ctx))
}

// Close stops accepting new jobs, stops cluster heartbeats, and closes
// the layout store. In-flight job items are cancelled; already-spilled
// layouts stay durable.
func (e *Engine) Close() error {
	e.jobs.close()
	if e.rep != nil {
		e.rep.close()
	}
	if e.cluster != nil {
		e.cluster.Close()
	}
	return e.layStore.Close()
}

// Drain flushes what a graceful shutdown can still deliver: pending
// replication envelopes are pushed to every reachable peer until the
// queue empties or ctx expires. Hints held for peers that are still
// down die with the process — the anti-entropy sweep on the surviving
// owners repairs those holes. Callers drain after the HTTP server has
// stopped accepting (so no new envelopes arrive) and before Close.
func (e *Engine) Drain(ctx context.Context) {
	if e.rep != nil {
		e.rep.drain(ctx)
	}
}

// Jobs returns the engine's async batch-job subsystem.
func (e *Engine) Jobs() *Jobs { return e.jobs }

// Cluster returns the sharding layer, nil in single-process mode.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Recorder returns the recent-trace ring behind GET /tracez.
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// recordTrace files a finished trace into the ring, scores its wall
// time against the latency SLOs, and emits the slow-request log line —
// carrying trace_id and tenant so the line joins against /tracez and
// /tenantz — when the request exceeded the threshold.
func (e *Engine) recordTrace(path, tenant string, td *obs.TraceData) {
	if td == nil {
		return
	}
	e.rec.Record(td)
	e.slo.ObserveLatency(time.Duration(td.DurMs * float64(time.Millisecond)))
	if e.slowThresh <= 0 || td.DurMs < float64(e.slowThresh)/float64(time.Millisecond) {
		return
	}
	line, err := json.Marshal(struct {
		Ts       time.Time         `json:"ts"`
		Msg      string            `json:"msg"`
		Path     string            `json:"path"`
		Tenant   string            `json:"tenant,omitempty"`
		DurMs    float64           `json:"dur_ms"`
		TraceID  string            `json:"trace_id"`
		TopSpans []obs.SpanSummary `json:"top_spans"`
	}{td.Start, "slow request", path, tenant, td.DurMs, td.ID, td.Top(3)})
	if err != nil {
		return
	}
	e.slowMu.Lock()
	fmt.Fprintf(e.slowW, "%s\n", line)
	e.slowMu.Unlock()
}

// HealthStore is the store section of the /healthz readiness payload.
type HealthStore struct {
	DiskHealthy bool  `json:"disk_healthy"`
	WriteErrors int64 `json:"write_errors"`
	DiskFiles   int64 `json:"disk_files"`
}

// HealthCluster is the cluster section of the /healthz readiness
// payload. PeersTotal includes this replica; OpenBreakers counts peers
// whose forwarding circuit breaker is currently open.
type HealthCluster struct {
	PeersUp      int `json:"peers_up"`
	PeersTotal   int `json:"peers_total"`
	OpenBreakers int `json:"open_breakers"`
}

// HealthAdmission is the QoS section of the /healthz readiness payload,
// present when admission control is configured. ShedRate1m is the shed
// fraction over the last minute — a load balancer can use it to steer
// traffic away from an overloaded replica before it starts failing.
type HealthAdmission struct {
	Queued     int     `json:"queued"`
	ShedRate1m float64 `json:"shed_rate_1m"`
}

// HealthSLO is the SLO section of the /healthz readiness payload,
// present when objectives are configured. Exceeded means some
// objective's fast-window (5m) burn rate is at or above BurnAlert —
// the error budget is being spent too fast to sustain — and degrades
// the replica.
type HealthSLO struct {
	MaxFastBurn float64 `json:"max_fast_burn"`
	BurnAlert   float64 `json:"burn_alert"`
	Exceeded    bool    `json:"exceeded"`
}

// HealthView is the /healthz body: the original liveness contract
// (status "ok") extended with readiness detail.
type HealthView struct {
	Status    string           `json:"status"`
	Store     HealthStore      `json:"store"`
	Admission *HealthAdmission `json:"admission,omitempty"`
	Cluster   *HealthCluster   `json:"cluster,omitempty"`
	SLO       *HealthSLO       `json:"slo,omitempty"`
}

// Health reports readiness: ok=false (HTTP 503) when the disk tier is
// erroring, since a replica that cannot spill loses restart durability
// and shared-store short-circuiting. Down peers are reported but do
// not gate readiness — a partitioned replica still serves its share.
func (e *Engine) Health() (HealthView, bool) {
	ss := e.layStore.Stats()
	hv := HealthView{
		Status: "ok",
		Store: HealthStore{
			DiskHealthy: ss.DiskHealthy,
			WriteErrors: ss.WriteErrors,
			DiskFiles:   ss.DiskFiles,
		},
	}
	if e.adm != nil {
		hv.Admission = &HealthAdmission{
			Queued:     e.adm.queueDepth(),
			ShedRate1m: e.adm.shedRate(),
		}
	}
	if e.cluster != nil {
		cs := e.cluster.Stats()
		hc := &HealthCluster{
			PeersUp:      1,
			PeersTotal:   len(cs.PeerUp) + 1,
			OpenBreakers: cs.OpenBreakers,
		}
		for _, up := range cs.PeerUp {
			if up {
				hc.PeersUp++
			}
		}
		hv.Cluster = hc
	}
	ok := true
	if e.slo != nil {
		hs := &HealthSLO{
			MaxFastBurn: e.slo.MaxFastBurn(),
			BurnAlert:   e.burnAlert,
		}
		hs.Exceeded = hs.MaxFastBurn >= hs.BurnAlert
		hv.SLO = hs
		if hs.Exceeded {
			// Burning the fast window at alert rate means the replica is
			// failing its objectives right now: degrade so load balancers
			// steer away while the budget recovers.
			ok = false
		}
	}
	if !ss.DiskHealthy {
		ok = false
	}
	if !ok {
		hv.Status = "degraded"
	}
	return hv, ok
}

// stats holds the engine counters behind /statsz.
type stats struct {
	requests                atomic.Int64
	layoutHits, layoutMiss  atomic.Int64
	gpHits, gpMiss          atomic.Int64
	fidHits, fidMiss        atomic.Int64
	computed                atomic.Int64 // pipeline stage executions (GP, legalize, fidelity)
	sharedFlights           atomic.Int64 // requests that joined an in-flight computation
	inFlight                atomic.Int64 // computations currently executing
	latencyNs, latencyCount atomic.Int64
	// computeNs/computeCount track only cache-miss computations (the
	// work a queued request is actually waiting behind), feeding the
	// admission layer's queue-wait estimate. latencyNs above averages
	// over hits too, which would underestimate the backlog badly.
	computeNs, computeCount atomic.Int64
}

// StatsSnapshot is a point-in-time view of the engine counters.
type StatsSnapshot struct {
	Requests       int64 `json:"requests"`
	LayoutHits     int64 `json:"layout_hits"`
	LayoutMisses   int64 `json:"layout_misses"`
	GPHits         int64 `json:"gp_hits"`
	GPMisses       int64 `json:"gp_misses"`
	FidelityHits   int64 `json:"fidelity_hits"`
	FidelityMisses int64 `json:"fidelity_misses"`
	Computed       int64 `json:"computed"`
	SharedFlights  int64 `json:"shared_flights"`
	InFlight       int64 `json:"in_flight"`
	// MeanLatencyMs averages the wall time of Layout/Fidelity calls
	// (hits and misses alike).
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	// Kernels reports per-hot-kernel call counts, cumulative time, and
	// scratch reuse (process-wide; see package kernstats). A healthy
	// steady-state engine shows scratch_reuses far above scratch_allocs.
	Kernels map[string]kernstats.Snapshot `json:"kernels,omitempty"`
	// Counters are the process-wide event counters (detailed-placement
	// wave sizes, scheduling conflicts, serial-path windows). The mean
	// wave size is wave_windows/waves; the conflict rate is
	// wave_deferred over wave_windows + wave_deferred; worker
	// utilization is wave_lanes/waves against the budget's capacity.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Parallel snapshots the engine's lane budget: grants, denials,
	// tokens in use, and the high-water mark of concurrently running
	// pool lanes (never above capacity — the no-oversubscription
	// invariant).
	Parallel parallel.Stats `json:"parallel"`
	// Store is the layout store's per-tier view: memory hits, disk
	// hits (restart rehydration), spills, GC evictions, corrupt files
	// skipped. LayoutHits above counts any-tier hits; Store splits them.
	Store store.Stats `json:"store"`
	// Jobs snapshots the async batch-job subsystem, including the
	// current queue depth.
	Jobs JobsStats `json:"jobs"`
	// Admission, present only when the QoS front-end is configured,
	// reports the bounded queue's live state; the per-reason shed
	// counts (service.shed_*) live in Counters.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Cluster, present only in cluster mode, reports this replica's
	// routing outcomes (owned/forwarded/fallback_local/short_circuit)
	// and per-peer liveness (peer_up) so load imbalance across the ring
	// is observable next to the budget stats.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// Replication, present only in cluster mode, reports the push
	// replication pipeline: envelopes sent/received, duplicates
	// suppressed, the pending (retry + hinted handoff) queue depth, and
	// anti-entropy repairs.
	Replication *ReplicationStats `json:"replication,omitempty"`
	// SLOs, present when objectives are configured, reports each
	// objective's rolling-window compliance and burn rate (two rows per
	// objective: 5m then 1h).
	SLOs []obs.SLOState `json:"slos,omitempty"`
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() StatsSnapshot {
	s := StatsSnapshot{
		Requests:       e.stats.requests.Load(),
		LayoutHits:     e.stats.layoutHits.Load(),
		LayoutMisses:   e.stats.layoutMiss.Load(),
		GPHits:         e.stats.gpHits.Load(),
		GPMisses:       e.stats.gpMiss.Load(),
		FidelityHits:   e.stats.fidHits.Load(),
		FidelityMisses: e.stats.fidMiss.Load(),
		Computed:       e.stats.computed.Load(),
		SharedFlights:  e.stats.sharedFlights.Load(),
		InFlight:       e.stats.inFlight.Load(),
		Kernels:        kernstats.All(),
		Counters:       kernstats.Counters(),
		Parallel:       e.budget.Stats(),
		Store:          e.layStore.Stats(),
		Jobs:           e.jobs.Stats(),
	}
	if n := e.stats.latencyCount.Load(); n > 0 {
		s.MeanLatencyMs = float64(e.stats.latencyNs.Load()) / float64(n) / 1e6
	}
	if e.adm != nil {
		s.Admission = &AdmissionStats{
			Queued:     e.adm.queueDepth(),
			MaxQueue:   e.adm.maxQueue,
			Shed:       e.adm.shed.Load(),
			ShedRate1m: e.adm.shedRate(),
			EstWaitMs:  float64(e.estQueueWait().Nanoseconds()) / 1e6,
		}
	}
	if e.cluster != nil {
		cs := e.cluster.Stats()
		s.Cluster = &cs
	}
	if e.rep != nil {
		rs := e.rep.stats()
		s.Replication = &rs
	}
	s.SLOs = e.slo.Snapshot()
	return s
}

// LayoutRequest identifies one legalized layout. The cache key is the
// canonical hash of (Topology, Strategy, Config) — the GP seed rides in
// Config.GP.Seed. Device optionally supplies a pre-built device (the
// experiments drivers pass their own instances); when nil the topology
// is resolved by name. Device.Name is the cache identity, so custom
// devices must use distinct names.
type LayoutRequest struct {
	Topology string           `json:"topology"`
	Strategy core.Strategy    `json:"strategy"`
	Config   core.Config      `json:"config"`
	Device   *topology.Device `json:"-"`
}

// LayoutResult is a computed or cached layout.
type LayoutResult struct {
	Layout *core.Layout
	// CacheHit reports the layout came straight from the LRU; Shared
	// reports the request joined another request's in-flight
	// computation. At most one is true.
	CacheHit bool
	Shared   bool
}

// FidelityRequest identifies one averaged-fidelity evaluation: the
// layout request plus the benchmark circuit name.
type FidelityRequest struct {
	LayoutRequest
	Benchmark string `json:"benchmark"`
}

// FidelityResult is a computed or cached fidelity value.
type FidelityResult struct {
	Fidelity float64
	CacheHit bool
	Shared   bool
}

// keyOf hashes any JSON-marshalable value into a stable hex key. Config
// structs are plain exported scalars, so encoding/json is canonical
// (struct order, no maps).
func keyOf(kind string, v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Config structs cannot fail to marshal; a custom Device cannot
		// reach here (it is excluded from the key).
		panic(fmt.Sprintf("service: unhashable request: %v", err))
	}
	sum := sha256.Sum256(append([]byte(kind+"\x00"), b...))
	return kind + ":" + hex.EncodeToString(sum[:])
}

func layoutKey(req LayoutRequest) string {
	return keyOf("layout", struct {
		Topology string
		Strategy core.Strategy
		Config   core.Config
	}{req.Topology, req.Strategy, req.Config})
}

// gpKey excludes the strategy: all strategies legalize clones of the
// same GP solution, exactly as the paper's methodology prescribes.
func gpKey(topo string, cfg core.Config) string {
	return keyOf("gp", struct {
		Topology string
		Build    topology.BuildParams
		GP       any
	}{topo, cfg.Build, cfg.GP})
}

func fidelityKey(req FidelityRequest) string {
	return keyOf("fidelity", struct {
		Topology  string
		Strategy  core.Strategy
		Benchmark string
		Config    core.Config
	}{req.Topology, req.Strategy, req.Benchmark, req.Config})
}

// withBudget stamps the engine's parallelism budget into every stage's
// params before a computation runs. The stamped fields carry json:"-"
// and are excluded from request hashing, so cache keys and layouts are
// unchanged — the budget only decides how many lanes compute them.
func (e *Engine) withBudget(cfg core.Config) core.Config {
	cfg.GP.Par = e.budget
	cfg.DP.Par = e.budget
	cfg.Metrics.Par = e.budget
	return cfg
}

// withCancel threads the request context's cancellation into the
// placement kernels: gplace checks it per force-directed iteration,
// dplace per serial window and per wave. Like Par/Obs, the Cancel
// fields carry json:"-" and never reach cache keys; an aborted
// computation surfaces context.Canceled before any partial result can
// be cached (Legalize errors skip the store Put, and gpFor re-checks
// ctx before caching a GP solution).
func (e *Engine) withCancel(ctx context.Context, cfg core.Config) core.Config {
	cfg.GP.Cancel = ctx.Done()
	cfg.DP.Cancel = ctx.Done()
	return cfg
}

// ParallelStats snapshots the engine's parallelism budget (the shared
// process-wide budget when none was configured).
func (e *Engine) ParallelStats() parallel.Stats {
	return e.budget.Stats()
}

// retryShared reports whether a flight error is another request's
// context cancellation leaking to a follower whose own context is
// still live. The computation runs under the leader's context, so a
// cancelled leader fails every coalesced request; live followers must
// retry (and lead the next flight themselves) instead of surfacing a
// cancellation they never asked for.
func retryShared(ctx context.Context, err error, shared bool) bool {
	return shared && ctx.Err() == nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// acquire takes a worker slot, honoring cancellation while queued.
// Requests that passed the QoS front-end (tenant in ctx) first pass
// queue admission: a full or over-slow bounded queue sheds them with a
// *ShedError before they start waiting, and fair-share accounting
// bounds any one tenant's queue occupancy while others wait. The
// reserved queue slot is always returned — on success, cancellation,
// or shed — so admission can never strand capacity.
func (e *Engine) acquire(ctx context.Context) (release func(), err error) {
	if err := e.faults.Fire(ctx, faultinject.SiteWorkerSlot); err != nil {
		return nil, err
	}
	if tenant := tenantFrom(ctx); tenant != "" && e.adm != nil {
		leave, shed := e.adm.enqueue(tenant, e.estQueueWait())
		if shed != nil {
			countShed(shed)
			e.acct.Tenant(tenant).Shed()
			return nil, shed
		}
		defer leave()
	}
	qstart := time.Now()
	select {
	case e.sem <- struct{}{}:
		e.tenantAcct(ctx).AddQueueWait(time.Since(qstart))
		return func() { <-e.sem }, nil
	case <-ctx.Done():
		e.tenantAcct(ctx).AddQueueWait(time.Since(qstart))
		return nil, ctx.Err()
	}
}

// countShed files a shed verdict under its per-reason counter.
func countShed(shed *ShedError) {
	if shed.Status == 429 {
		kernstats.ShedFairShare.Add(1)
	} else {
		kernstats.ShedQueue.Add(1)
	}
}

// estQueueWait estimates how long a newly queued request will wait for
// a worker slot: the live mean compute latency times the number of
// requests ahead of it, spread over the pool. Zero until the first
// computation finishes — an idle engine never sheds on the estimate.
func (e *Engine) estQueueWait() time.Duration {
	n := e.stats.computeCount.Load()
	if n == 0 {
		return 0
	}
	mean := time.Duration(e.stats.computeNs.Load() / n)
	waiting := int64(e.adm.queueDepth()) + e.stats.inFlight.Load()
	return mean * time.Duration(waiting) / time.Duration(e.workers)
}

// Layout returns the legalized layout for the request, computing it at
// most once across concurrent identical requests. The returned layout
// is shared and must be treated as immutable; clone its Netlist before
// modifying.
func (e *Engine) Layout(ctx context.Context, req LayoutRequest) (LayoutResult, error) {
	start := time.Now()
	e.stats.requests.Add(1)
	defer func() {
		e.stats.latencyNs.Add(time.Since(start).Nanoseconds())
		e.stats.latencyCount.Add(1)
	}()

	sp := obs.SpanFrom(ctx)
	key := layoutKey(req)
	if lay, ok := e.storeGet(ctx, key, sp); ok {
		e.stats.layoutHits.Add(1)
		e.tenantAcct(ctx).CacheHit()
		sp.AttrBool("cache_hit", true)
		return LayoutResult{Layout: lay, CacheHit: true}, nil
	}

	qs := sp.Child("queue.wait")
	release, err := e.acquire(ctx)
	qs.End()
	if err != nil {
		return LayoutResult{}, err
	}
	defer release()

	// The store may have filled while this request queued for a slot;
	// engine hit/miss is decided only now so each request counts exactly
	// once. Peek, not Get — the store already counted this request's
	// miss above. This read is a store.read fault site too: an injected
	// failure degrades it to the same recompute path.
	if lay, ok := e.storePeek(ctx, key); ok {
		e.stats.layoutHits.Add(1)
		e.tenantAcct(ctx).CacheHit()
		sp.AttrBool("cache_hit", true)
		return LayoutResult{Layout: lay, CacheHit: true}, nil
	}
	e.stats.layoutMiss.Add(1)

	lay, err, shared := e.layoutFlightDo(ctx, key, req)
	if err != nil {
		return LayoutResult{}, err
	}
	if shared {
		e.stats.sharedFlights.Add(1)
		sp.AttrBool("shared", true)
	}
	return LayoutResult{Layout: lay, Shared: shared}, nil
}

// storeGet is a Get with per-tier spans when the store supports them
// (and a plain wrapper span otherwise). A nil span costs nothing. An
// injected store.read fault is served as a miss: the layout is
// recomputed, exactly how a failing disk tier degrades.
func (e *Engine) storeGet(ctx context.Context, key string, sp *obs.Span) (*core.Layout, bool) {
	if e.faults.Fire(ctx, faultinject.SiteStoreRead) != nil {
		return nil, false
	}
	if ts, ok := e.layStore.(store.Traced); ok {
		return ts.GetTraced(key, sp)
	}
	gs := sp.Child("store.get")
	lay, ok := e.layStore.Get(key)
	gs.AttrBool("hit", ok)
	gs.End()
	return lay, ok
}

// storePeek is Peek behind the same store.read fault site as storeGet.
func (e *Engine) storePeek(ctx context.Context, key string) (*core.Layout, bool) {
	if e.faults.Fire(ctx, faultinject.SiteStoreRead) != nil {
		return nil, false
	}
	return e.layStore.Peek(key)
}

// layoutFlightDo coalesces concurrent identical layout computations.
// The caller must hold a worker slot.
func (e *Engine) layoutFlightDo(ctx context.Context, key string, req LayoutRequest) (*core.Layout, error, bool) {
	for {
		v, err, shared := e.layFlight.Do(ctx, key, func() (any, error) {
			lay, err := e.computeLayout(ctx, req)
			if err != nil {
				return nil, err
			}
			if e.faults.Fire(ctx, faultinject.SiteStoreWrite) != nil {
				// Injected write failure: the layout is still served,
				// it just is not remembered — exactly a disk-tier error.
				return lay, nil
			}
			ps := obs.SpanFrom(ctx).Child("store.put")
			e.layStore.Put(key, lay)
			ps.End()
			// Stream the envelope to the other ring owners (async, retried)
			// so disk-less peers can serve this key without recompute.
			if e.rep != nil {
				e.rep.replicate(key, lay)
			}
			return lay, nil
		})
		if retryShared(ctx, err, shared) {
			continue
		}
		if err != nil {
			return nil, err, shared
		}
		return v.(*core.Layout), nil, shared
	}
}

// computeLayout runs GP (cached) then legalization, checking
// cancellation between stages. Caller holds a worker slot.
func (e *Engine) computeLayout(ctx context.Context, req LayoutRequest) (*core.Layout, error) {
	gp, err := e.gpFor(ctx, req)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.stats.inFlight.Add(1)
	defer e.stats.inFlight.Add(-1)
	e.stats.computed.Add(1)
	start := time.Now()
	ts := e.tenantAcct(ctx)
	defer func() {
		d := time.Since(start)
		e.stats.computeNs.Add(d.Nanoseconds())
		e.stats.computeCount.Add(1)
		ts.AddCompute(d)
	}()
	cfg := e.withCancel(ctx, e.withBudget(req.Config))
	// Pipeline stages hang their spans under the (leader) request's
	// span; followers coalesced into this flight share the tree via the
	// recorded trace, not their own.
	cfg.Obs = obs.SpanFrom(ctx)
	return e.legalizeFn(ctx, gp, req.Strategy, cfg)
}

// gpFor returns the (immutable) global-placement solution for the
// request's topology and config, cached and singleflighted so all
// strategies of one topology share one GP run. Legalization clones it.
func (e *Engine) gpFor(ctx context.Context, req LayoutRequest) (*netlist.Netlist, error) {
	key := gpKey(req.Topology, req.Config)
	if v, ok := e.gpCache.Get(key); ok {
		e.stats.gpHits.Add(1)
		return v.(*netlist.Netlist), nil
	}
	e.stats.gpMiss.Add(1)
	for {
		v, err, shared := e.gpFlight.Do(ctx, key, func() (any, error) {
			dev := req.Device
			if dev == nil {
				var err error
				if dev, err = topology.ByName(req.Topology); err != nil {
					return nil, err
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			e.stats.inFlight.Add(1)
			defer e.stats.inFlight.Add(-1)
			e.stats.computed.Add(1)
			cfg := e.withCancel(ctx, e.withBudget(req.Config))
			cfg.Obs = obs.SpanFrom(ctx)
			gp := e.prepareFn(dev, cfg)
			// A cancellation mid-placement leaves gp partially iterated
			// (gplace returns early without error). Never cache it — the
			// next request must recompute from scratch.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			e.gpCache.Add(key, gp)
			return gp, nil
		})
		if retryShared(ctx, err, shared) {
			continue
		}
		if err != nil {
			return nil, err
		}
		return v.(*netlist.Netlist), nil
	}
}

// Fidelity returns the benchmark's averaged program fidelity on the
// requested layout, computing the layout first if it is not cached.
func (e *Engine) Fidelity(ctx context.Context, req FidelityRequest) (FidelityResult, error) {
	start := time.Now()
	e.stats.requests.Add(1)
	defer func() {
		e.stats.latencyNs.Add(time.Since(start).Nanoseconds())
		e.stats.latencyCount.Add(1)
	}()

	sp := obs.SpanFrom(ctx)
	key := fidelityKey(req)
	if v, ok := e.fidCache.Get(key); ok {
		e.stats.fidHits.Add(1)
		e.tenantAcct(ctx).CacheHit()
		e.slo.ObserveFidelity(v.(float64))
		sp.AttrBool("cache_hit", true)
		return FidelityResult{Fidelity: v.(float64), CacheHit: true}, nil
	}

	qs := sp.Child("queue.wait")
	release, err := e.acquire(ctx)
	qs.End()
	if err != nil {
		return FidelityResult{}, err
	}
	defer release()

	if v, ok := e.fidCache.Get(key); ok {
		e.stats.fidHits.Add(1)
		e.tenantAcct(ctx).CacheHit()
		e.slo.ObserveFidelity(v.(float64))
		return FidelityResult{Fidelity: v.(float64), CacheHit: true}, nil
	}
	e.stats.fidMiss.Add(1)

	for {
		v, err, shared := e.fidFlight.Do(ctx, key, func() (any, error) {
			lay, err := e.layoutForNested(ctx, req.LayoutRequest)
			if err != nil {
				return nil, err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			e.stats.inFlight.Add(1)
			defer e.stats.inFlight.Add(-1)
			e.stats.computed.Add(1)
			cstart := time.Now()
			ts := e.tenantAcct(ctx)
			defer func() {
				d := time.Since(cstart)
				e.stats.computeNs.Add(d.Nanoseconds())
				e.stats.computeCount.Add(1)
				ts.AddCompute(d)
			}()
			fcfg := req.Config
			fcfg.Obs = obs.SpanFrom(ctx)
			f, err := e.fidelityFn(ctx, lay.Netlist, req.Benchmark, fcfg)
			if err != nil {
				return nil, err
			}
			e.fidCache.Add(key, f)
			return f, nil
		})
		if retryShared(ctx, err, shared) {
			continue
		}
		if err != nil {
			return FidelityResult{}, err
		}
		if shared {
			e.stats.sharedFlights.Add(1)
		}
		e.slo.ObserveFidelity(v.(float64))
		return FidelityResult{Fidelity: v.(float64), Shared: shared}, nil
	}
}

// layoutForNested resolves a layout from within another computation.
// The caller already holds a worker slot, so it must not acquire a
// second one (that would deadlock a single-worker pool). It also skips
// the layout hit/miss counters — those count client layout requests,
// and this resolution belongs to a fidelity request counted elsewhere.
func (e *Engine) layoutForNested(ctx context.Context, req LayoutRequest) (*core.Layout, error) {
	key := layoutKey(req)
	if lay, ok := e.storeGet(ctx, key, obs.SpanFrom(ctx)); ok {
		return lay, nil
	}
	lay, err, _ := e.layoutFlightDo(ctx, key, req)
	return lay, err
}

// Analyze returns the layout-quality report for a cached-or-computed
// layout. The metrics pass is cheap relative to placement, so it is not
// cached separately.
func (e *Engine) Analyze(ctx context.Context, req LayoutRequest) (metrics.Report, *core.Layout, error) {
	res, err := e.Layout(ctx, req)
	if err != nil {
		return metrics.Report{}, nil, err
	}
	cfg := e.withBudget(req.Config)
	cfg.Obs = obs.SpanFrom(ctx)
	return core.Analyze(res.Layout.Netlist, cfg), res.Layout, nil
}

// SweepItem is one topology × strategy result of a Sweep stream.
type SweepItem struct {
	Topology string         `json:"topology"`
	Strategy core.Strategy  `json:"strategy"`
	Report   metrics.Report `json:"report"`
	// Fidelity maps benchmark name to averaged program fidelity;
	// MeanFidelity averages across the requested benchmarks.
	Fidelity     map[string]float64 `json:"fidelity,omitempty"`
	MeanFidelity float64            `json:"mean_fidelity"`
	QubitMs      float64            `json:"tq_ms"`
	ResonatorMs  float64            `json:"te_ms"`
	CacheHit     bool               `json:"cache_hit"`
	Err          string             `json:"error,omitempty"`
}

// Sweep evaluates every topology × strategy combination concurrently
// and streams results in completion order. The channel closes when all
// combinations finish or ctx is cancelled.
func (e *Engine) Sweep(ctx context.Context, topos []string, strats []core.Strategy, benches []string, cfg core.Config) <-chan SweepItem {
	out := make(chan SweepItem)
	var wg sync.WaitGroup
	for _, topo := range topos {
		for _, s := range strats {
			wg.Add(1)
			go func(topo string, s core.Strategy) {
				defer wg.Done()
				item := e.sweepOne(ctx, topo, s, benches, cfg)
				select {
				case out <- item:
				case <-ctx.Done():
				}
			}(topo, s)
		}
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

func (e *Engine) sweepOne(ctx context.Context, topo string, s core.Strategy, benches []string, cfg core.Config) SweepItem {
	item := SweepItem{Topology: topo, Strategy: s}
	req := LayoutRequest{Topology: topo, Strategy: s, Config: cfg}
	res, err := e.Layout(ctx, req)
	if err != nil {
		item.Err = err.Error()
		return item
	}
	item.CacheHit = res.CacheHit
	item.Report = core.Analyze(res.Layout.Netlist, e.withBudget(cfg))
	item.QubitMs = float64(res.Layout.QubitTime.Nanoseconds()) / 1e6
	item.ResonatorMs = float64(res.Layout.ResonatorTime.Nanoseconds()) / 1e6
	if len(benches) == 0 {
		return item
	}
	item.Fidelity = make(map[string]float64, len(benches))
	var sum float64
	for _, b := range benches {
		fr, err := e.Fidelity(ctx, FidelityRequest{LayoutRequest: req, Benchmark: b})
		if err != nil {
			item.Err = err.Error()
			return item
		}
		item.Fidelity[b] = fr.Fidelity
		sum += fr.Fidelity
	}
	item.MeanFidelity = sum / float64(len(benches))
	return item
}
