package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/topology"
)

// Fig1Result quantifies the paper's conceptual Fig. 1: layout quality as
// a function of the placement optimization stage (GP → LG → DP), for a
// quantum-aware and a classic legalization flow. The paper draws this
// qualitatively; here the same curves are measured: the quality gained
// or destroyed at the LG stage is not recovered later, because qubits
// freeze after legalization.
type Fig1Result struct {
	Topology string
	// Stage rows in order: GP (illegal), classic LG, quantum LG (qGDP),
	// quantum LG+DP.
	Stages []Fig1Stage
}

// Fig1Stage is one point of the quality-vs-stage curve.
type Fig1Stage struct {
	Name      string
	Ph        float64
	Crossings int
	// Fidelity is NaN-free: GP layouts are illegal (overlaps), but the
	// metric sweep still evaluates them; fidelity is only evaluated for
	// legal stages and reported as 0 for GP.
	Fidelity float64
	Legal    bool
}

// Fig1 measures the quality-vs-stage curves on one topology.
func Fig1(dev *topology.Device, cfg core.Config) (*Fig1Result, error) {
	res := &Fig1Result{Topology: dev.Name}
	gp := core.Prepare(dev, cfg)

	gpRep := core.Analyze(gp, cfg)
	res.Stages = append(res.Stages, Fig1Stage{
		Name: "GP (illegal)", Ph: gpRep.Ph, Crossings: gpRep.Crossings,
	})

	add := func(name string, s core.Strategy) error {
		lay, err := core.Legalize(gp, s, cfg)
		if err != nil {
			return err
		}
		rep := core.Analyze(lay.Netlist, cfg)
		f, err := core.AverageFidelity(lay.Netlist, "bv-4", cfg)
		if err != nil {
			return err
		}
		res.Stages = append(res.Stages, Fig1Stage{
			Name: name, Ph: rep.Ph, Crossings: rep.Crossings,
			Fidelity: f, Legal: true,
		})
		return nil
	}
	if err := add("classic LG (Tetris)", core.TetrisS); err != nil {
		return nil, err
	}
	if err := add("quantum LG (qGDP-LG)", core.QGDPLG); err != nil {
		return nil, err
	}
	if err := add("quantum LG+DP (qGDP-DP)", core.QGDPDP); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the stage curve.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 (quantified) — layout quality vs. placement stage, %s\n", r.Topology)
	headers := []string{"stage", "Ph(%)", "X", "bv-4 fidelity"}
	var rows [][]string
	for _, s := range r.Stages {
		fid := "n/a"
		if s.Legal {
			fid = report.Fidelity(s.Fidelity)
		}
		rows = append(rows, []string{
			s.Name, fmt.Sprintf("%.2f", s.Ph), fmt.Sprintf("%d", s.Crossings), fid,
		})
	}
	b.WriteString(report.Table(headers, rows))
	return b.String()
}
