package circuit

import (
	"bytes"
	"strings"
	"testing"
)

func TestQASMRoundTrip(t *testing.T) {
	c := New("round", 4)
	c.AddH(0).AddX(1).AddRX(2, 0.5).AddRY(3, -1.25).AddRZ(0, 3.14159)
	c.AddCX(0, 1).AddSWAP(2, 3)

	var buf bytes.Buffer
	if err := c.WriteQASM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadQASM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "round" || back.NumQubits != 4 {
		t.Errorf("header: %q %d", back.Name, back.NumQubits)
	}
	if len(back.Gates) != len(c.Gates) {
		t.Fatalf("gates = %d, want %d", len(back.Gates), len(c.Gates))
	}
	for i := range c.Gates {
		if back.Gates[i] != c.Gates[i] {
			t.Errorf("gate %d: %+v != %+v", i, back.Gates[i], c.Gates[i])
		}
	}
}

func TestQASMOutputFormat(t *testing.T) {
	c := New("fmt", 2)
	c.AddH(0).AddCX(0, 1)
	var buf bytes.Buffer
	if err := c.WriteQASM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"OPENQASM 2.0;",
		`include "qelib1.inc";`,
		"qreg q[2];",
		"h q[0];",
		"cx q[0],q[1];",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReadQASMErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no qreg", "OPENQASM 2.0;\nh q[0];\n"},
		{"double qreg", "qreg q[2];\nqreg p[2];\n"},
		{"unknown gate", "qreg q[2];\nccx q[0],q[1];\n"},
		{"bad operand", "qreg q[2];\nh foo;\n"},
		{"bad param", "qreg q[2];\nrx(abc) q[0];\n"},
		{"operand count", "qreg q[2];\ncx q[0];\n"},
		{"malformed qreg", "qreg q;\n"},
		{"empty", ""},
	}
	for _, tc := range cases {
		if _, err := ReadQASM(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReadQASMSkipsCommentsAndBlank(t *testing.T) {
	in := `OPENQASM 2.0;
include "qelib1.inc";
// my-circuit

qreg q[3];
// a comment between gates
h q[2];
`
	c, err := ReadQASM(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "my-circuit" {
		t.Errorf("name = %q", c.Name)
	}
	if len(c.Gates) != 1 || c.Gates[0].Kind != H || c.Gates[0].Q1 != 2 {
		t.Errorf("gates = %+v", c.Gates)
	}
}

func TestQASMBenchmarkSuiteRoundTrips(t *testing.T) {
	// Every gate the benchmark generators emit must survive the QASM
	// round trip (cross-package check lives here to avoid a cycle:
	// rebuild bv-16 by hand through the public builder).
	c := New("bv16ish", 16)
	c.AddX(15)
	for q := 0; q < 16; q++ {
		c.AddH(q)
	}
	for q := 0; q < 15; q += 2 {
		c.AddCX(q, 15)
	}
	var buf bytes.Buffer
	if err := c.WriteQASM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadQASM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TwoQubitCount() != c.TwoQubitCount() || back.OneQubitCount() != c.OneQubitCount() {
		t.Error("gate counts changed through QASM")
	}
	if back.Depth() != c.Depth() {
		t.Error("depth changed through QASM")
	}
}
